"""Unit tests for execution-time distributions (Eq. 2 and friends)."""

import math

import numpy as np
import pytest

from repro.workload.distributions import (
    Deterministic,
    EmpiricalDistribution,
    LogNormal,
    ParetoType1,
    ShiftedExponential,
    ExecutionTimeDistribution,
)


class TestDeterministic:
    def test_moments(self):
        d = Deterministic(5.0)
        assert d.mean == 5.0 and d.std == 0.0

    def test_sampling_is_constant(self, rng):
        d = Deterministic(5.0)
        assert d.sample(rng) == 5.0
        assert np.all(d.sample_many(rng, 10) == 5.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Deterministic(0.0)


class TestParetoType1:
    def test_mean_formula(self):
        p = ParetoType1(x_m=2.0, alpha=3.0)
        assert p.mean == pytest.approx(3.0)  # α x_m/(α−1) = 3·2/2

    def test_std_formula(self):
        p = ParetoType1(x_m=1.0, alpha=3.0)
        # var = α x_m²/((α−1)²(α−2)) = 3/4 → std = sqrt(3)/2
        assert p.std == pytest.approx(math.sqrt(3) / 2)

    def test_infinite_std_for_small_alpha(self):
        assert ParetoType1(1.0, 1.5).std == math.inf

    def test_rejects_alpha_at_most_one(self):
        with pytest.raises(ValueError):
            ParetoType1(1.0, 1.0)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            ParetoType1(0.0, 2.0)

    def test_survival_eq2(self):
        p = ParetoType1(x_m=2.0, alpha=2.0)
        assert p.survival(1.0) == 1.0  # below x_m
        assert p.survival(4.0) == pytest.approx(0.25)

    def test_samples_at_least_x_m(self, rng):
        p = ParetoType1(x_m=3.0, alpha=2.5)
        s = p.sample_many(rng, 10_000)
        assert np.all(s >= 3.0)

    def test_sample_mean_converges(self, rng):
        p = ParetoType1(x_m=1.0, alpha=4.0)
        s = p.sample_many(rng, 200_000)
        assert s.mean() == pytest.approx(p.mean, rel=0.02)

    def test_min_of_multiplies_alpha(self):
        p = ParetoType1(1.0, 2.0)
        m = p.min_of(3)
        assert m.alpha == 6.0 and m.x_m == 1.0

    def test_min_of_matches_empirical_minimum(self, rng):
        p = ParetoType1(1.0, 2.5)
        r = 3
        draws = p.sample_many(rng, 3 * 100_000).reshape(-1, r).min(axis=1)
        assert draws.mean() == pytest.approx(p.min_of(r).mean, rel=0.02)

    def test_from_moments_roundtrip(self):
        fitted = ParetoType1.from_moments(10.0, 4.0)
        assert fitted.mean == pytest.approx(10.0)
        assert fitted.std == pytest.approx(4.0)

    def test_from_moments_always_finite_variance(self):
        # Even huge cv yields α > 2.
        fitted = ParetoType1.from_moments(1.0, 100.0)
        assert fitted.alpha > 2.0

    def test_from_moments_rejects_zero_std(self):
        with pytest.raises(ValueError):
            ParetoType1.from_moments(1.0, 0.0)


class TestLogNormal:
    def test_from_moments_roundtrip(self):
        d = LogNormal.from_moments(20.0, 10.0)
        assert d.mean == pytest.approx(20.0)
        assert d.std == pytest.approx(10.0)

    def test_sample_positive(self, rng):
        d = LogNormal.from_moments(5.0, 2.0)
        assert np.all(d.sample_many(rng, 1000) > 0)

    def test_sample_mean_converges(self, rng):
        d = LogNormal.from_moments(5.0, 2.0)
        s = d.sample_many(rng, 100_000)
        assert s.mean() == pytest.approx(5.0, rel=0.02)


class TestShiftedExponential:
    def test_moments(self):
        d = ShiftedExponential(shift=2.0, rate=0.5)
        assert d.mean == pytest.approx(4.0)
        assert d.std == pytest.approx(2.0)

    def test_samples_above_shift(self, rng):
        d = ShiftedExponential(shift=2.0, rate=1.0)
        assert np.all(d.sample_many(rng, 1000) >= 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShiftedExponential(-1.0, 1.0)
        with pytest.raises(ValueError):
            ShiftedExponential(1.0, 0.0)


class TestEmpirical:
    def test_moments(self):
        d = EmpiricalDistribution([1.0, 2.0, 3.0])
        assert d.mean == pytest.approx(2.0)
        assert d.std == pytest.approx(np.std([1, 2, 3]))

    def test_samples_from_support(self, rng):
        d = EmpiricalDistribution([1.0, 5.0, 9.0])
        s = d.sample_many(rng, 500)
        assert set(np.unique(s)) <= {1.0, 5.0, 9.0}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([])

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([1.0, 0.0])


class TestProtocol:
    @pytest.mark.parametrize(
        "dist",
        [
            Deterministic(1.0),
            ParetoType1(1.0, 3.0),
            LogNormal.from_moments(2.0, 1.0),
            ShiftedExponential(1.0, 1.0),
            EmpiricalDistribution([1.0, 2.0]),
        ],
    )
    def test_all_satisfy_protocol(self, dist):
        assert isinstance(dist, ExecutionTimeDistribution)

    @pytest.mark.parametrize(
        "dist",
        [
            ParetoType1(1.0, 3.0),
            LogNormal.from_moments(2.0, 1.0),
            ShiftedExponential(1.0, 1.0),
        ],
    )
    def test_sampling_deterministic_under_seed(self, dist):
        a = dist.sample_many(np.random.default_rng(7), 10)
        b = dist.sample_many(np.random.default_rng(7), 10)
        assert np.array_equal(a, b)
