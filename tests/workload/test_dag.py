"""Unit tests for DAG helpers (validation, topo order, critical path)."""

import pytest

from repro.workload.dag import (
    critical_path,
    critical_path_length,
    topological_order,
    validate_dag,
)


class TestValidation:
    def test_valid_chain(self):
        validate_dag([(), (0,), (1,)])  # no raise

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            validate_dag([(0,)])

    def test_out_of_range_parent(self):
        with pytest.raises(ValueError):
            validate_dag([(), (5,)])

    def test_cycle_rejected(self):
        # 1→2 and 2→1 expressed as forward indices can't cycle by
        # construction; use an explicit back edge.
        with pytest.raises(ValueError):
            validate_dag([(1,), (0,)])


class TestTopologicalOrder:
    def test_chain(self):
        assert topological_order([(), (0,), (1,)]) == [0, 1, 2]

    def test_diamond(self):
        order = topological_order([(), (0,), (0,), (1, 2)])
        assert order.index(0) < order.index(1)
        assert order.index(0) < order.index(2)
        assert order.index(3) == 3

    def test_deterministic_lowest_index_first(self):
        # Two independent roots: 0 before 1.
        assert topological_order([(), (), (0, 1)]) == [0, 1, 2]

    def test_cycle_detected(self):
        with pytest.raises(ValueError):
            topological_order([(1,), (0,)])


class TestCriticalPath:
    def test_chain_length_is_sum(self):
        parents = [(), (0,), (1,)]
        assert critical_path_length(parents, lambda k: float(k + 1)) == 6.0

    def test_diamond_takes_longer_branch(self):
        parents = [(), (0,), (0,), (1, 2)]
        lengths = {0: 1.0, 1: 10.0, 2: 2.0, 3: 1.0}
        assert critical_path_length(parents, lengths.__getitem__) == 12.0

    def test_parallel_roots(self):
        parents = [(), ()]
        assert critical_path_length(parents, lambda k: [3.0, 7.0][k]) == 7.0

    def test_include_filter_excludes_finished(self):
        parents = [(), (0,), (1,)]
        # Exclude phase 0 (finished): remaining path = phases 1+2.
        got = critical_path_length(
            parents, lambda k: 5.0, include=lambda k: k != 0
        )
        assert got == 10.0

    def test_include_all_excluded_gives_zero(self):
        got = critical_path_length([(), (0,)], lambda k: 5.0, include=lambda k: False)
        assert got == 0.0

    def test_empty_graph(self):
        assert critical_path_length([], lambda k: 1.0) == 0.0

    def test_critical_path_nodes(self):
        parents = [(), (0,), (0,), (1, 2)]
        lengths = {0: 1.0, 1: 10.0, 2: 2.0, 3: 1.0}
        assert critical_path(parents, lengths.__getitem__) == [0, 1, 3]

    def test_critical_path_empty(self):
        assert critical_path([], lambda k: 1.0) == []
