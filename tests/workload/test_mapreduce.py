"""Unit tests for the WordCount / PageRank job builders."""

import pytest

from repro.workload.mapreduce import mapreduce_job, pagerank_job, wordcount_job


class TestWordCount:
    def test_two_phase_structure(self):
        job = wordcount_job(4.0)
        assert job.num_phases == 2
        assert job.phases[0].name == "map"
        assert job.phases[1].name == "reduce"
        assert job.phases[1].parents == (0,)

    def test_map_tasks_scale_with_input(self):
        small = wordcount_job(1.0)
        big = wordcount_job(10.0)
        assert big.phases[0].num_tasks > small.phases[0].num_tasks
        # 128 MB blocks: 4 GB → 32 map tasks (paper's Fig. 1 job).
        assert wordcount_job(4.0).phases[0].num_tasks == 32

    def test_reduce_fraction(self):
        job = wordcount_job(4.0, reduce_fraction=0.25)
        assert job.phases[1].num_tasks == 8

    def test_stochastic_durations(self):
        job = wordcount_job(4.0, cv=0.5)
        assert job.phases[0].sigma == pytest.approx(0.5 * job.phases[0].theta)

    def test_rejects_nonpositive_input(self):
        with pytest.raises(ValueError):
            wordcount_job(0.0)

    def test_name_and_arrival(self):
        job = wordcount_job(10.0, arrival_time=42.0)
        assert job.arrival_time == 42.0
        assert "wordcount" in job.name


class TestPageRank:
    def test_iteration_chain(self):
        job = pagerank_job(1.0, iterations=3)
        assert job.num_phases == 6  # map+reduce per iteration
        for k in range(1, 6):
            assert job.phases[k].parents == (k - 1,)

    def test_input_size_variants(self):
        small = pagerank_job(1.0)
        big = pagerank_job(10.0)
        assert big.num_tasks > small.num_tasks

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            pagerank_job(1.0, iterations=0)

    def test_rejects_nonpositive_input(self):
        with pytest.raises(ValueError):
            pagerank_job(-1.0)


class TestGenericBuilder:
    def test_mapreduce_job_basic(self):
        job = mapreduce_job(num_map=10, num_reduce=2, map_theta=5.0, reduce_theta=3.0)
        assert job.phases[0].num_tasks == 10
        assert job.phases[1].num_tasks == 2
        assert job.phases[0].theta == pytest.approx(5.0)

    def test_rejects_empty_phases(self):
        with pytest.raises(ValueError):
            mapreduce_job(num_map=0, num_reduce=1, map_theta=1.0, reduce_theta=1.0)
