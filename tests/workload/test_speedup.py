"""Unit tests for the speedup functions (Eqs. 1, 3 and Cor. 4.1 helper)."""

import numpy as np
import pytest

from repro.workload.distributions import ParetoType1
from repro.workload.speedup import (
    NoSpeedup,
    ParetoSpeedup,
    TabulatedSpeedup,
    required_clones,
)


class TestParetoSpeedup:
    def test_h_of_one_is_one(self):
        assert ParetoSpeedup(2.0)(1) == pytest.approx(1.0)

    def test_eq3_value(self):
        # h(x) = 1 + (1 - 1/x)/(α-1); α=3, x=2 → 1 + 0.5/2 = 1.25
        assert ParetoSpeedup(3.0)(2) == pytest.approx(1.25)

    def test_strictly_increasing(self):
        h = ParetoSpeedup(2.5)
        values = [h(r) for r in range(1, 10)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_concave_on_integers(self):
        h = ParetoSpeedup(2.5)
        diffs = [h(r + 1) - h(r) for r in range(1, 10)]
        assert all(d2 < d1 for d1, d2 in zip(diffs, diffs[1:]))

    def test_bounded_by_R(self):
        h = ParetoSpeedup(3.0)
        assert h.bound == pytest.approx(1.5)  # α/(α−1)
        assert h(10_000) < h.bound

    def test_rejects_copies_below_one(self):
        with pytest.raises(ValueError):
            ParetoSpeedup(2.0)(0)

    def test_rejects_alpha_at_most_one(self):
        with pytest.raises(ValueError):
            ParetoSpeedup(1.0)

    def test_from_moments_matches_distribution_fit(self):
        dist = ParetoType1.from_moments(10.0, 5.0)
        h = ParetoSpeedup.from_moments(10.0, 5.0)
        assert h.alpha == pytest.approx(dist.alpha)

    def test_consistent_with_min_of_pareto(self, rng):
        """Eq. 1: E[Θ(r)] ≈ θ/h(r) under the true Pareto minimum.

        The identity min of r Paretos(α) ~ Pareto(rα) gives
        E[min] = rα·x_m/(rα−1); check h matches that ratio.
        """
        alpha, r = 3.0, 4
        p = ParetoType1(1.0, alpha)
        h = ParetoSpeedup(alpha)
        expected_ratio = p.mean / p.min_of(r).mean
        assert h(r) == pytest.approx(expected_ratio)


class TestNoSpeedup:
    def test_always_one(self):
        h = NoSpeedup()
        assert h(1) == h(5) == 1.0

    def test_rejects_below_one(self):
        with pytest.raises(ValueError):
            NoSpeedup()(0.5)


class TestTabulatedSpeedup:
    def test_exact_at_integers(self):
        h = TabulatedSpeedup([1.0, 1.4, 1.6])
        assert h(1) == 1.0 and h(2) == 1.4 and h(3) == 1.6

    def test_interpolates(self):
        h = TabulatedSpeedup([1.0, 2.0])
        assert h(1.5) == pytest.approx(1.5)

    def test_saturates_beyond_table(self):
        h = TabulatedSpeedup([1.0, 1.5])
        assert h(10) == 1.5

    def test_h1_must_be_one(self):
        with pytest.raises(ValueError):
            TabulatedSpeedup([1.1])

    def test_must_be_nondecreasing(self):
        with pytest.raises(ValueError):
            TabulatedSpeedup([1.0, 1.5, 1.2])


class TestRequiredClones:
    def test_no_clone_needed_when_deadline_loose(self):
        h = ParetoSpeedup(2.0)
        assert required_clones(10.0, 20.0, h) == 1

    def test_clones_needed_for_tight_deadline(self):
        h = ParetoSpeedup(2.0)  # h(2) = 1.5
        # θ=15, deadline=10: need h(r) ≥ 1.5 → r = 2.
        assert required_clones(15.0, 10.0, h) == 2

    def test_unreachable_returns_none(self):
        h = ParetoSpeedup(3.0)  # bound 1.5
        assert required_clones(20.0, 10.0, h) is None

    def test_validation(self):
        h = NoSpeedup()
        with pytest.raises(ValueError):
            required_clones(0.0, 1.0, h)
        with pytest.raises(ValueError):
            required_clones(1.0, 0.0, h)
