"""Unit tests for phases (θ, σ, effective time, progress tracking)."""

import pytest

from repro.resources import Resources
from repro.workload.distributions import Deterministic, ParetoType1
from repro.workload.phase import Phase
from repro.workload.speedup import NoSpeedup, ParetoSpeedup
from repro.workload.job import Job
from repro.workload.task import TaskCopy, TaskState


def make_phase(num_tasks=3, theta=10.0, sigma=0.0):
    dist = ParetoType1.from_moments(theta, sigma) if sigma > 0 else Deterministic(theta)
    p = Phase(0, num_tasks, Resources.of(1, 2), dist)
    Job([p])
    return p


class TestConstruction:
    def test_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            Phase(0, 0, Resources.of(1, 1), Deterministic(1.0))

    def test_rejects_zero_demand(self):
        with pytest.raises(ValueError):
            Phase(0, 1, Resources.of(0, 0), Deterministic(1.0))

    def test_rejects_forward_parents(self):
        with pytest.raises(ValueError):
            Phase(1, 1, Resources.of(1, 1), Deterministic(1.0), parents=(1,))

    def test_parents_sorted_and_deduped(self):
        p = Phase(3, 1, Resources.of(1, 1), Deterministic(1.0), parents=(2, 0, 2))
        assert p.parents == (0, 2)

    def test_default_name(self):
        assert make_phase().name == "phase0"


class TestStatistics:
    def test_theta_sigma_from_distribution(self):
        p = make_phase(theta=20.0, sigma=8.0)
        assert p.theta == pytest.approx(20.0)
        assert p.sigma == pytest.approx(8.0)

    def test_effective_time(self):
        p = make_phase(theta=20.0, sigma=8.0)
        assert p.effective_time(1.5) == pytest.approx(20.0 + 1.5 * 8.0)

    def test_effective_time_deterministic_equals_theta(self):
        p = make_phase(theta=20.0)
        assert p.effective_time(1.5) == 20.0

    def test_default_speedup_pareto_for_stochastic(self):
        p = make_phase(theta=10.0, sigma=4.0)
        assert isinstance(p.speedup, ParetoSpeedup)

    def test_default_speedup_none_for_deterministic(self):
        p = make_phase(theta=10.0)
        assert isinstance(p.speedup, NoSpeedup)

    def test_explicit_speedup_kept(self):
        h = ParetoSpeedup(2.0)
        p = Phase(0, 1, Resources.of(1, 1), Deterministic(1.0), speedup=h)
        assert p.speedup is h


class TestProgress:
    def test_initial(self):
        p = make_phase(3)
        assert p.num_unfinished == 3
        assert not p.is_finished
        assert p.finish_time() is None
        assert len(p.pending_tasks()) == 3

    def test_running_partition(self):
        p = make_phase(3)
        t = p.tasks[0]
        t.add_copy(TaskCopy(t, 0, 0.0, 5.0, is_clone=False))
        assert p.running_tasks() == [t]
        assert len(p.pending_tasks()) == 2

    def test_finish_tracking(self):
        p = make_phase(2)
        p.tasks[0].complete(3.0)
        assert p.num_unfinished == 1
        p.tasks[1].complete(7.0)
        assert p.is_finished
        assert p.finish_time() == 7.0  # λ = max over tasks
        assert all(t.state is TaskState.FINISHED for t in p.tasks)
