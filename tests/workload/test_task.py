"""Unit tests for tasks and task copies."""

import pytest

from repro.resources import Resources
from repro.workload.distributions import Deterministic
from repro.workload.job import Job
from repro.workload.phase import Phase
from repro.workload.task import TaskCopy, TaskState


def make_task():
    phase = Phase(0, 2, Resources.of(1, 2), Deterministic(10.0))
    Job([phase])
    return phase.tasks[0]


class TestTaskCopy:
    def test_finish_time(self):
        t = make_task()
        c = TaskCopy(t, 0, 5.0, 10.0, is_clone=False)
        assert c.finish_time == 15.0

    def test_live_transitions(self):
        t = make_task()
        c = TaskCopy(t, 0, 0.0, 1.0, is_clone=False)
        assert c.live
        c.killed = True
        assert not c.live

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            TaskCopy(make_task(), 0, 0.0, 0.0, is_clone=False)

    def test_identity_semantics(self):
        t = make_task()
        a = TaskCopy(t, 0, 0.0, 1.0, is_clone=False)
        b = TaskCopy(t, 0, 0.0, 1.0, is_clone=False)
        assert a != b and a == a
        assert len({a, b}) == 2


class TestTask:
    def test_initial_state(self):
        t = make_task()
        assert t.state is TaskState.PENDING
        assert t.start_time is None
        assert not t.has_run
        assert t.num_live_copies == 0

    def test_uid_unique_within_job(self):
        phase = Phase(0, 3, Resources.of(1, 1), Deterministic(1.0))
        Job([phase])
        uids = {t.uid for t in phase.tasks}
        assert len(uids) == 3

    def test_add_copy_moves_to_running(self):
        t = make_task()
        t.add_copy(TaskCopy(t, 0, 2.0, 5.0, is_clone=False))
        assert t.state is TaskState.RUNNING
        assert t.start_time == 2.0
        assert t.has_run

    def test_start_time_is_earliest_copy(self):
        t = make_task()
        t.add_copy(TaskCopy(t, 0, 5.0, 5.0, is_clone=False))
        t.add_copy(TaskCopy(t, 1, 3.0, 5.0, is_clone=True))
        assert t.start_time == 3.0

    def test_live_copies_excludes_killed(self):
        t = make_task()
        a = TaskCopy(t, 0, 0.0, 5.0, is_clone=False)
        b = TaskCopy(t, 1, 0.0, 5.0, is_clone=True)
        t.add_copy(a)
        t.add_copy(b)
        b.killed = True
        assert t.live_copies() == [a]
        assert t.num_live_copies == 1

    def test_complete(self):
        t = make_task()
        t.add_copy(TaskCopy(t, 0, 0.0, 5.0, is_clone=False))
        t.complete(5.0)
        assert t.state is TaskState.FINISHED
        assert t.finish_time == 5.0

    def test_complete_twice_raises(self):
        t = make_task()
        t.complete(1.0)
        with pytest.raises(RuntimeError):
            t.complete(2.0)

    def test_add_copy_after_finish_raises(self):
        t = make_task()
        t.complete(1.0)
        with pytest.raises(RuntimeError):
            t.add_copy(TaskCopy(t, 0, 1.0, 1.0, is_clone=True))

    def test_demand_comes_from_phase(self):
        t = make_task()
        assert t.demand == Resources.of(1, 2)
