"""Unit tests for the synthetic Google trace generator and trace I/O."""

import numpy as np
import pytest

from repro.workload.google_trace import (
    GoogleTraceGenerator,
    PhaseSpec,
    TraceJobSpec,
    jobs_from_specs,
    load_trace,
    save_trace,
)


class TestSpecs:
    def test_phase_spec_validation(self):
        with pytest.raises(ValueError):
            PhaseSpec(num_tasks=0, cpu=1, mem=1, theta=1.0, sigma=0.0)
        with pytest.raises(ValueError):
            PhaseSpec(num_tasks=1, cpu=1, mem=1, theta=0.0, sigma=0.0)
        with pytest.raises(ValueError):
            PhaseSpec(num_tasks=1, cpu=1, mem=1, theta=1.0, sigma=-1.0)

    def test_job_spec_task_count(self):
        spec = TraceJobSpec(
            name="j",
            arrival_time=0.0,
            phases=(
                PhaseSpec(num_tasks=3, cpu=1, mem=1, theta=1.0, sigma=0.0),
                PhaseSpec(num_tasks=2, cpu=1, mem=1, theta=1.0, sigma=0.0, parents=(0,)),
            ),
        )
        assert spec.num_tasks() == 5


class TestGenerator:
    def test_reproducible(self):
        a = GoogleTraceGenerator(seed=5).generate(20)
        b = GoogleTraceGenerator(seed=5).generate(20)
        assert a == b

    def test_seed_matters(self):
        a = GoogleTraceGenerator(seed=5).generate(20)
        b = GoogleTraceGenerator(seed=6).generate(20)
        assert a != b

    def test_arrivals_monotone(self):
        specs = GoogleTraceGenerator(seed=0).generate(50, mean_interarrival=10.0)
        times = [s.arrival_time for s in specs]
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_mostly_small_jobs(self):
        """95% of jobs are small (the trace statistic from Sec. 1)."""
        specs = GoogleTraceGenerator(seed=1).generate(500)
        sizes = np.array([s.num_tasks() for s in specs])
        assert np.quantile(sizes, 0.90) <= 500
        assert sizes.max() > np.median(sizes) * 10  # heavy tail exists

    def test_straggler_phase_fraction(self):
        """~70% of phases should be straggler-prone (cv = straggler_cv)."""
        gen = GoogleTraceGenerator(seed=2, straggler_phase_fraction=0.7)
        specs = gen.generate(400)
        phases = [p for s in specs for p in s.phases]
        straggly = sum(1 for p in phases if p.sigma / p.theta > 0.5)
        frac = straggly / len(phases)
        assert 0.6 < frac < 0.8

    def test_zero_fraction_means_no_stragglers(self):
        gen = GoogleTraceGenerator(seed=2, straggler_phase_fraction=0.0, normal_cv=0.1)
        specs = gen.generate(100)
        assert all(p.sigma / p.theta < 0.2 for s in specs for p in s.phases)

    def test_phase_chains_valid(self):
        specs = GoogleTraceGenerator(seed=3).generate(200)
        for s in specs:
            for k, p in enumerate(s.phases):
                assert all(q < k for q in p.parents)

    def test_num_jobs_zero(self):
        assert GoogleTraceGenerator(seed=0).generate(0) == []


class TestMaterialization:
    def test_jobs_match_specs(self):
        specs = GoogleTraceGenerator(seed=4).generate(30)
        jobs = jobs_from_specs(specs)
        assert len(jobs) == 30
        for spec, job in zip(specs, jobs):
            assert job.arrival_time == spec.arrival_time
            assert job.num_tasks == spec.num_tasks()
            for ps, phase in zip(spec.phases, job.phases):
                assert phase.theta == pytest.approx(ps.theta, rel=1e-9)
                assert phase.sigma == pytest.approx(ps.sigma, rel=1e-9)

    def test_deterministic_phase_when_sigma_zero(self):
        spec = TraceJobSpec(
            name="d",
            arrival_time=0.0,
            phases=(PhaseSpec(num_tasks=1, cpu=1, mem=1, theta=5.0, sigma=0.0),),
        )
        (job,) = jobs_from_specs([spec])
        assert job.phases[0].sigma == 0.0


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        specs = GoogleTraceGenerator(seed=7).generate(25)
        path = tmp_path / "trace.json"
        save_trace(specs, path)
        loaded = load_trace(path)
        assert loaded == specs

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else", "jobs": []}')
        with pytest.raises(ValueError):
            load_trace(path)
