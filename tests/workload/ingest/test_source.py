"""`TraceIngestSource` — arrival-source semantics and checkpointing."""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.workload.google_trace import TraceJobSpec, PhaseSpec
from repro.workload.ingest import TraceIngestSource

CORPUS = Path(__file__).resolve().parents[2] / "fixtures" / "traces"
FIXTURE = CORPUS / "google2019-r200-s0.jsonl"


def spec(arrival: float, *, job_id=None, name="j") -> TraceJobSpec:
    return TraceJobSpec(
        name=name,
        arrival_time=arrival,
        phases=(PhaseSpec(num_tasks=1, cpu=1.0, mem=1.0, theta=10.0, sigma=0.0),),
        job_id=job_id,
    )


class TestTake:
    def test_stream_ordinal_ids(self):
        src = TraceIngestSource(iter([spec(0.0), spec(5.0)]))
        a, b = src.take(), src.take()
        assert (a.job_id, b.job_id) == (0, 1)
        assert b.arrival_time == 5.0
        assert src.take() is None
        assert src.exhausted
        assert src.consumed == 2

    def test_explicit_job_id_wins(self):
        src = TraceIngestSource(iter([spec(0.0, job_id=77)]))
        assert src.take().job_id == 77

    def test_out_of_order_arrivals_rejected(self):
        src = TraceIngestSource(iter([spec(10.0), spec(3.0)]))
        src.take()
        with pytest.raises(ValueError, match="out of order"):
            src.take()

    def test_from_file(self):
        src = TraceIngestSource.from_file(FIXTURE, "google2019", max_jobs=5)
        jobs = []
        while (job := src.take()) is not None:
            jobs.append(job)
        assert len(jobs) == 5
        assert [j.job_id for j in jobs] == [0, 1, 2, 3, 4]
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)


class TestCheckpoint:
    def test_pickle_detaches_iterator(self):
        src = TraceIngestSource.from_file(FIXTURE, "google2019", max_jobs=6)
        first = [src.take(), src.take(), src.take()]
        revived = pickle.loads(pickle.dumps(src))
        assert revived.consumed == 3
        with pytest.raises(RuntimeError, match="detached"):
            revived.take()

    def test_attach_skip_consumed_resumes_bit_exact(self):
        uninterrupted = TraceIngestSource.from_file(FIXTURE, "google2019", max_jobs=6)
        reference = []
        while (job := uninterrupted.take()) is not None:
            reference.append(job)

        src = TraceIngestSource.from_file(FIXTURE, "google2019", max_jobs=6)
        for _ in range(3):
            src.take()
        revived = pickle.loads(pickle.dumps(src))
        from repro.workload.ingest import normalize_stream, open_reader

        revived.attach(
            normalize_stream(open_reader(FIXTURE, "google2019"), max_jobs=6)
        )
        resumed = []
        while (job := revived.take()) is not None:
            resumed.append(job)
        assert [(j.job_id, j.arrival_time, j.name) for j in resumed] == [
            (j.job_id, j.arrival_time, j.name) for j in reference[3:]
        ]

    def test_attach_on_too_short_stream(self):
        src = TraceIngestSource(iter([spec(0.0), spec(1.0)]))
        src.take(), src.take()
        with pytest.raises(ValueError, match="fast-forwarding"):
            src.attach(iter([spec(0.0)]))
