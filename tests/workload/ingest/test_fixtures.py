"""Fixture-generator determinism and the committed-corpus pin."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.workload.ingest import (
    FIXTURE_SCHEMAS,
    fixture_filename,
    generator_fingerprint,
    materialize,
    normalize_stream,
    open_reader,
    write_fixture,
)

CORPUS = Path(__file__).resolve().parents[2] / "fixtures" / "traces"


class TestDeterminism:
    @pytest.mark.parametrize("schema", FIXTURE_SCHEMAS)
    def test_same_params_same_bytes(self, tmp_path, schema):
        a = tmp_path / "a" / fixture_filename(schema, 120, 3)
        b = tmp_path / "b" / fixture_filename(schema, 120, 3)
        assert write_fixture(schema, a, rows=120, seed=3) == 120
        assert write_fixture(schema, b, rows=120, seed=3) == 120
        assert a.read_bytes() == b.read_bytes()

    def test_different_seed_different_bytes(self, tmp_path):
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        write_fixture("alibaba2018", a, rows=60, seed=0)
        write_fixture("alibaba2018", b, rows=60, seed=1)
        assert a.read_bytes() != b.read_bytes()

    @pytest.mark.parametrize("schema", FIXTURE_SCHEMAS)
    def test_committed_corpus_pin(self, tmp_path, schema):
        """The committed ~200-row corpus must equal a fresh generation.

        If this fails you changed the generator: regenerate the corpus
        (see tests/fixtures/traces/README.md) and commit the new bytes.
        """
        committed = CORPUS / fixture_filename(schema, 200, 0)
        fresh = tmp_path / committed.name
        write_fixture(schema, fresh, rows=200, seed=0)
        assert fresh.read_bytes() == committed.read_bytes()

    @pytest.mark.parametrize("schema", FIXTURE_SCHEMAS)
    def test_corpus_ingests_cleanly(self, schema):
        path = CORPUS / fixture_filename(schema, 200, 0)
        specs = list(normalize_stream(open_reader(path, schema)))
        assert specs
        assert [s.job_id for s in specs] == list(range(len(specs)))


class TestMaterialize:
    def test_skips_existing_files(self, tmp_path):
        first = materialize(tmp_path, rows=40, seed=0, schemas=("alibaba2018",))
        path = first["alibaba2018"]
        stamp = path.stat().st_mtime_ns
        second = materialize(tmp_path, rows=40, seed=0, schemas=("alibaba2018",))
        assert second["alibaba2018"] == path
        assert path.stat().st_mtime_ns == stamp

    def test_validates_inputs(self, tmp_path):
        with pytest.raises(ValueError, match="unknown fixture schema"):
            write_fixture("yahoo2007", tmp_path / "x.csv", rows=10)
        with pytest.raises(ValueError, match="rows must be >= 1"):
            write_fixture("alibaba2018", tmp_path / "x.csv", rows=0)

    def test_fingerprint_is_stable_sha256(self):
        fp = generator_fingerprint()
        assert re.fullmatch(r"[0-9a-f]{64}", fp)
        assert fp == generator_fingerprint()
