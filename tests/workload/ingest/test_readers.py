"""Reader-level malformed-input coverage.

The contract under test: every structurally bad row raises
:class:`TraceFormatError` carrying the file path and the 1-based line
number of the offending row — nothing is silently dropped or coerced.
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro.workload.ingest import (
    Alibaba2018Reader,
    Google2011Reader,
    Google2019Reader,
    TraceFormatError,
    open_reader,
)
from repro.workload.ingest.readers import _parse_dag_name


def g2011_line(
    t_us: int, job: str, task: int, event: int, cpu: str = "0.5", mem: str = "0.25"
) -> str:
    cols = [""] * 13
    cols[0], cols[2], cols[3], cols[5] = str(t_us), job, str(task), str(event)
    cols[9], cols[10] = cpu, mem
    return ",".join(cols)


def write_g2011(tmp_path, lines, *, name="t.csv"):
    path = tmp_path / name
    path.write_text("\n".join(lines) + "\n")
    return path


def g2019_line(t_us, job, task, type_, request=None, **extra) -> str:
    obj = {"time": t_us, "collection_id": job, "instance_index": task,
           "type": type_, **extra}
    if request is not None:
        obj["resource_request"] = request
    return json.dumps(obj)


def write_g2019(tmp_path, lines):
    path = tmp_path / "t.jsonl"
    path.write_text("\n".join(lines) + "\n")
    return path


def ali_line(name, inst, job, start, end, cpu="100", mem="1.0") -> str:
    return f"{name},{inst},{job},1,Terminated,{start},{end},{cpu},{mem}"


def write_ali(tmp_path, lines):
    path = tmp_path / "t.csv"
    path.write_text("\n".join(lines) + "\n")
    return path


class TestGoogle2011:
    def test_happy_path_units(self, tmp_path):
        path = write_g2011(tmp_path, [g2011_line(2_000_000, "j1", 0, 0)])
        (row,) = Google2011Reader(path).rows()
        assert row.time == pytest.approx(2.0)  # µs → s
        assert (row.job, row.task, row.event) == ("j1", 0, "submit")
        assert (row.cpu, row.mem) == (0.5, 0.25)
        assert row.line == 1

    def test_event_code_buckets(self, tmp_path):
        codes = {1: "schedule", 2: "dead", 3: "dead", 4: "finish",
                 5: "dead", 6: "dead", 7: "other", 8: "other"}
        path = write_g2011(
            tmp_path, [g2011_line(i, "j", i, c) for i, c in enumerate(codes)]
        )
        got = [r.event for r in Google2011Reader(path).rows()]
        assert got == list(codes.values())

    def test_unknown_event_type(self, tmp_path):
        path = write_g2011(
            tmp_path, [g2011_line(0, "j", 0, 0), g2011_line(1, "j", 1, 9)]
        )
        with pytest.raises(TraceFormatError, match="unknown event type 9") as exc:
            list(Google2011Reader(path).rows())
        assert exc.value.line == 2
        assert str(path) in str(exc.value)

    def test_wrong_column_count(self, tmp_path):
        path = write_g2011(tmp_path, ["1,2,3"])
        with pytest.raises(TraceFormatError, match="expected 13 columns, got 3") as exc:
            list(Google2011Reader(path).rows())
        assert exc.value.line == 1

    def test_missing_timestamp(self, tmp_path):
        bad = "," + g2011_line(0, "j", 0, 0).split(",", 1)[1]
        path = write_g2011(tmp_path, [bad])
        with pytest.raises(TraceFormatError, match="missing timestamp"):
            list(Google2011Reader(path).rows())

    def test_non_numeric_fields(self, tmp_path):
        path = write_g2011(tmp_path, [g2011_line(0, "j", 0, 0, cpu="lots")])
        with pytest.raises(TraceFormatError, match="non-numeric cpu request 'lots'"):
            list(Google2011Reader(path).rows())
        bad_task = g2011_line(0, "j", 0, 0).split(",")
        bad_task[3] = "x"
        path = write_g2011(tmp_path, [",".join(bad_task)], name="t2.csv")
        with pytest.raises(TraceFormatError, match="non-integer task index"):
            list(Google2011Reader(path).rows())

    def test_truncated_gzip(self, tmp_path):
        payload = "\n".join(
            g2011_line(i, f"j{i}", 0, 0) for i in range(5_000)
        ).encode()
        whole = gzip.compress(payload)
        path = tmp_path / "t.csv.gz"
        path.write_bytes(whole[: len(whole) // 2])
        with pytest.raises(TraceFormatError, match="truncated or corrupt stream"):
            list(Google2011Reader(path).rows())

    def test_undecodable_bytes(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_bytes(g2011_line(0, "j", 0, 0).encode() + b"\n\xff\xfe\n")
        with pytest.raises(TraceFormatError, match="undecodable bytes"):
            list(Google2011Reader(path).rows())

    def test_blank_lines_skipped(self, tmp_path):
        path = write_g2011(tmp_path, [g2011_line(0, "j", 0, 0), "", g2011_line(1, "j", 1, 0)])
        rows = list(Google2011Reader(path).rows())
        assert [r.line for r in rows] == [1, 3]


class TestGoogle2019:
    def test_happy_path(self, tmp_path):
        path = write_g2019(
            tmp_path,
            [g2019_line(3_000_000, 42, 7, "SCHEDULE",
                        request={"cpus": 0.1, "memory": 0.2})],
        )
        (row,) = Google2019Reader(path).rows()
        assert row.time == pytest.approx(3.0)
        assert (row.job, row.task, row.event) == ("42", 7, "schedule")
        assert (row.cpu, row.mem) == (0.1, 0.2)

    def test_integer_codes_map_to_enum(self, tmp_path):
        path = write_g2019(tmp_path, [g2019_line(0, 1, 0, 6)])  # 6 = FINISH
        (row,) = Google2019Reader(path).rows()
        assert row.event == "finish"

    @pytest.mark.parametrize("bad_type", [42, "WEIRD", True, None])
    def test_unknown_event_type(self, tmp_path, bad_type):
        path = write_g2019(tmp_path, [g2019_line(0, 1, 0, bad_type)])
        with pytest.raises(TraceFormatError, match="unknown event type") as exc:
            list(Google2019Reader(path).rows())
        assert exc.value.line == 1

    def test_invalid_json(self, tmp_path):
        path = write_g2019(tmp_path, ["{not json"])
        with pytest.raises(TraceFormatError, match="invalid JSON"):
            list(Google2019Reader(path).rows())

    def test_non_object_row(self, tmp_path):
        path = write_g2019(tmp_path, ["[1, 2]"])
        with pytest.raises(TraceFormatError, match="not a JSON object"):
            list(Google2019Reader(path).rows())

    def test_missing_required_field(self, tmp_path):
        path = write_g2019(tmp_path, ['{"time": 0, "type": "SUBMIT"}'])
        with pytest.raises(TraceFormatError, match="missing or malformed"):
            list(Google2019Reader(path).rows())

    def test_bad_resource_request(self, tmp_path):
        path = write_g2019(tmp_path, [g2019_line(0, 1, 0, "SUBMIT", request=[1])])
        with pytest.raises(TraceFormatError, match="resource_request is not an object"):
            list(Google2019Reader(path).rows())


class TestAlibaba2018:
    def test_happy_path(self, tmp_path):
        path = write_ali(tmp_path, [ali_line("R2_1", 10, "j_42", 100, 160)])
        (row,) = Alibaba2018Reader(path).rows()
        assert (row.job, row.kind, row.phase, row.parents) == ("j_42", "group", "2", (1,))
        assert (row.time, row.end, row.instances) == (100.0, 160.0, 10)

    def test_opaque_names_pass_through(self, tmp_path):
        path = write_ali(tmp_path, [ali_line("task_5531", 1, "j_1", 0, 10)])
        (row,) = Alibaba2018Reader(path).rows()
        assert (row.phase, row.parents) == ("task_5531", ())

    def test_wrong_column_count(self, tmp_path):
        path = write_ali(tmp_path, ["a,b,c"])
        with pytest.raises(TraceFormatError, match="expected 9 columns"):
            list(Alibaba2018Reader(path).rows())

    def test_bad_instance_num(self, tmp_path):
        path = write_ali(tmp_path, [ali_line("M1", 0, "j", 0, 10)])
        with pytest.raises(TraceFormatError, match="instance_num must be >= 1"):
            list(Alibaba2018Reader(path).rows())
        path = write_ali(tmp_path, [ali_line("M1", "many", "j", 0, 10)])
        with pytest.raises(TraceFormatError, match="non-integer instance_num"):
            list(Alibaba2018Reader(path).rows())

    def test_missing_start_time(self, tmp_path):
        path = write_ali(tmp_path, [ali_line("M1", 1, "j", "", 10)])
        with pytest.raises(TraceFormatError, match="missing start_time"):
            list(Alibaba2018Reader(path).rows())

    def test_end_before_start_becomes_unknown(self, tmp_path):
        path = write_ali(tmp_path, [ali_line("M1", 1, "j", 100, 50)])
        (row,) = Alibaba2018Reader(path).rows()
        assert row.end is None

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("M1", ("1", ())),
            ("R2_1", ("2", (1,))),
            ("J3_1_2", ("3", (1, 2))),
            ("task_1234", ("task_1234", ())),
            ("MergeTask", ("MergeTask", ())),
        ],
    )
    def test_parse_dag_name(self, name, expected):
        assert _parse_dag_name(name) == expected


class TestOpenReader:
    def test_registry(self, tmp_path):
        path = write_ali(tmp_path, [ali_line("M1", 1, "j", 0, 10)])
        reader = open_reader(path, "alibaba2018")
        assert reader.schema == "alibaba2018"
        assert len(list(reader.rows())) == 1

    def test_unknown_schema(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace schema 'facebook2009'"):
            open_reader(tmp_path / "x.csv", "facebook2009")
