"""Validation-report coverage: sketches, distances, canonical output."""

from __future__ import annotations

import json
from pathlib import Path

from repro.workload.ingest import (
    StreamStats,
    normalize_stream,
    open_reader,
    synthetic_stats,
    tv_distance,
    validation_report,
)
from repro.workload.ingest.validate import dumps_canonical

CORPUS = Path(__file__).resolve().parents[2] / "fixtures" / "traces"
FIXTURE = CORPUS / "google2011-r200-s0.csv.gz"


def corpus_stats() -> StreamStats:
    return StreamStats().extend(
        normalize_stream(open_reader(FIXTURE, "google2011"))
    )


class TestStreamStats:
    def test_counts_and_bounds(self):
        stats = corpus_stats()
        assert stats.jobs > 0
        assert stats.tasks >= stats.jobs
        assert stats.phases >= stats.jobs
        assert 0.0 <= stats.straggler_fraction <= 1.0
        assert stats.mean_interarrival >= 0.0

    def test_to_dict_deterministic(self):
        assert corpus_stats().to_dict() == corpus_stats().to_dict()

    def test_quantiles_monotone(self):
        tail = corpus_stats().to_dict()["task_count_tail"]
        assert tail["p50"] <= tail["p90"] <= tail["p99"]

    def test_empty_stats(self):
        stats = StreamStats()
        assert stats.straggler_fraction == 0.0
        assert stats.mean_interarrival == 0.0
        assert stats.to_dict()["jobs"] == 0


class TestTvDistance:
    def test_identical_is_zero(self):
        assert tv_distance({"1": 5, "2": 5}, {"1": 5, "2": 5}) == 0.0

    def test_disjoint_is_one(self):
        assert tv_distance({"1": 10}, {"2": 10}) == 1.0

    def test_scale_invariant(self):
        assert tv_distance({"1": 1, "2": 3}, {"1": 10, "2": 30}) == 0.0

    def test_empty_sides(self):
        assert tv_distance({}, {}) == 0.0
        assert tv_distance({"1": 1}, {}) == 1.0


class TestReport:
    def test_synthetic_stats_seeded(self):
        a = synthetic_stats(jobs=20, mean_interarrival=5.0, seed=9)
        b = synthetic_stats(jobs=20, mean_interarrival=5.0, seed=9)
        assert a.to_dict() == b.to_dict()

    def test_report_shape_and_canonical_bytes(self):
        real = corpus_stats()
        synth = synthetic_stats(
            jobs=real.jobs, mean_interarrival=real.mean_interarrival, seed=0
        )
        report = validation_report(real, synth)
        assert report["format"] == "repro-ingest-validation/v1"
        for metric in ("task_count", "interarrival", "cpu_demand",
                       "mem_demand", "theta"):
            assert 0.0 <= report["tv_distance"][metric] <= 1.0
        assert 0.0 <= report["tv_distance"]["straggler_fraction_delta"] <= 1.0
        text = dumps_canonical(report)
        assert text == dumps_canonical(json.loads(text))
