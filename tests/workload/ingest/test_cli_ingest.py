"""`python -m repro ingest` — end-to-end subcommand coverage."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.workload.google_trace import load_trace
from repro.workload.ingest import generator_fingerprint

CORPUS = Path(__file__).resolve().parents[2] / "fixtures" / "traces"
G2019 = str(CORPUS / "google2019-r200-s0.jsonl")
G2011 = str(CORPUS / "google2011-r200-s0.csv.gz")
ALI = str(CORPUS / "alibaba2018-r200-s0.csv")


class TestConvert:
    def test_jsonl_streaming(self, tmp_path, capsys):
        out = tmp_path / "jobs.jsonl"
        rc = main(
            ["ingest", "convert", G2019, "--schema", "google2019",
             "--jsonl", "--out", str(out), "--max-jobs", "5"]
        )
        assert rc == 0
        lines = out.read_text().splitlines()
        assert len(lines) == 5
        ids = [json.loads(l)["job_id"] for l in lines]
        assert ids == [0, 1, 2, 3, 4]
        assert "converted 5 jobs" in capsys.readouterr().out

    def test_jsonl_to_stdout(self, capsys):
        rc = main(
            ["ingest", "convert", ALI, "--schema", "alibaba2018",
             "--jsonl", "--out", "-", "--max-jobs", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3

    def test_trace_v1_document(self, tmp_path):
        out = tmp_path / "jobs.json"
        rc = main(
            ["ingest", "convert", G2011, "--schema", "google2011",
             "--out", str(out), "--max-jobs", "4"]
        )
        assert rc == 0
        specs = load_trace(out)
        assert len(specs) == 4

    def test_stdout_requires_jsonl(self):
        with pytest.raises(SystemExit, match="requires --jsonl"):
            main(["ingest", "convert", G2011, "--schema", "google2011",
                  "--out", "-"])


class TestStats:
    def test_stdout_payload(self, capsys):
        rc = main(["ingest", "stats", G2011, "--schema", "google2011"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-ingest-stats/v1"
        assert payload["stats"]["jobs"] > 0
        assert payload["peak_rss_mb"] > 0

    def test_out_file_and_peak_window(self, tmp_path, capsys):
        out = tmp_path / "stats.json"
        rc = main(
            ["ingest", "stats", G2011, "--schema", "google2011",
             "--peak-window", "300", "--out", str(out)]
        )
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["stats"]["jobs"] > 0
        assert "peak window" in capsys.readouterr().err


class TestValidate:
    def test_report_file(self, tmp_path):
        out = tmp_path / "report.json"
        rc = main(
            ["ingest", "validate", G2019, "--schema", "google2019",
             "--out", str(out), "--max-jobs", "20"]
        )
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["format"] == "repro-ingest-validation/v1"
        assert report["real"]["jobs"] > 0
        # The synthetic baseline is matched to the real stream's shape.
        assert report["synthetic"]["jobs"] == report["real"]["jobs"]


class TestFixture:
    def test_materialize_and_fingerprint(self, tmp_path, capsys):
        rc = main(
            ["ingest", "fixture", "--out-dir", str(tmp_path),
             "--rows", "50", "--schema", "alibaba2018"]
        )
        assert rc == 0
        assert (tmp_path / "alibaba2018-r50-s0.csv").exists()
        assert generator_fingerprint() in capsys.readouterr().out
