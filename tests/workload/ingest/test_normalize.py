"""Normalization-level coverage: ordering, assembly, scaling, emission.

Cross-row malformedness (out-of-order timestamps, duplicate ids,
capacity violations) must surface as :class:`TraceFormatError` with the
offending line; well-formed streams must come out deterministic, with
dense stream-ordinal job ids and non-decreasing arrivals.
"""

from __future__ import annotations

import pytest

from repro.workload.google_trace import spec_to_dict
from repro.workload.ingest import (
    TraceFormatError,
    find_peak_window,
    normalize_stream,
    open_reader,
)

from tests.workload.ingest.test_readers import (
    ali_line,
    g2011_line,
    write_ali,
    write_g2011,
)

S = 1_000_000  # one second in google2011 µs timestamps


def specs_of(path, schema="google2011", **kwargs):
    return list(normalize_stream(open_reader(path, schema), **kwargs))


def triplet(t_s, job, task, cpu="0.5", mem="0.25"):
    """submit/schedule/finish rows for one task, one second apart."""
    return [
        g2011_line(t_s * S, job, task, 0, cpu, mem),
        g2011_line((t_s + 1) * S, job, task, 1, cpu, mem),
        g2011_line((t_s + 2) * S, job, task, 4, cpu, mem),
    ]


class TestErrors:
    def test_out_of_order_timestamp(self, tmp_path):
        path = write_g2011(
            tmp_path, [g2011_line(10 * S, "a", 0, 0), g2011_line(5 * S, "b", 0, 0)]
        )
        with pytest.raises(TraceFormatError, match="out-of-order timestamp") as exc:
            specs_of(path)
        assert exc.value.line == 2

    def test_reorder_window_tolerates_bounded_disorder(self, tmp_path):
        lines = [
            ali_line("M1", 1, "a", 100, 110),
            ali_line("M1", 1, "b", 50, 60),  # 50s behind, inside 900s window
        ]
        path = write_ali(tmp_path, lines)
        specs = specs_of(path, "alibaba2018")
        # Emission is arrival-ordered despite file order.
        assert [s.name for s in specs] == ["alibaba2018-b", "alibaba2018-a"]
        assert [s.job_id for s in specs] == [0, 1]

    def test_duplicate_task_submit(self, tmp_path):
        path = write_g2011(
            tmp_path, [g2011_line(0, "a", 0, 0), g2011_line(S, "a", 0, 0)]
        )
        with pytest.raises(TraceFormatError, match="duplicate submit for task 0") as exc:
            specs_of(path)
        assert exc.value.line == 2

    def test_duplicate_job_id_after_finalization(self, tmp_path):
        # Job "a" completes, goes silent past the linger horizon, is
        # finalized — then reappears.  That is a duplicate job id, not a
        # silent reopening.
        lines = triplet(0, "a", 0)
        lines += triplet(10_000, "b", 0)  # sweep trigger far past linger
        lines += [g2011_line(10_010 * S, "a", 1, 0)]
        path = write_g2011(tmp_path, lines)
        with pytest.raises(TraceFormatError, match="duplicate job id 'a'") as exc:
            specs_of(path)
        assert exc.value.line == 7

    def test_running_task_blocks_linger_close(self, tmp_path):
        # Job "a" schedules a task whose FINISH comes 10000s later —
        # far past the linger horizon.  A running task is activity, so
        # the job must stay open and the late FINISH must not error.
        lines = [
            g2011_line(0, "a", 0, 0),
            g2011_line(1 * S, "a", 0, 1),
        ]
        lines += triplet(8_000, "b", 0)
        lines += [g2011_line(10_000 * S, "a", 0, 4)]
        path = write_g2011(tmp_path, lines)
        specs = specs_of(path)
        assert sorted(s.name for s in specs) == ["google2011-a", "google2011-b"]
        a = next(s for s in specs if s.name == "google2011-a")
        assert a.phases[0].theta == pytest.approx(10_000 - 1)

    def test_capacity_exceeding_request(self, tmp_path):
        path = write_g2011(tmp_path, [g2011_line(0, "a", 0, 0, cpu="1.5")])
        with pytest.raises(
            TraceFormatError, match="exceeds machine capacity"
        ) as exc:
            specs_of(path)
        assert exc.value.line == 1

    def test_negative_request(self, tmp_path):
        path = write_g2011(tmp_path, [g2011_line(0, "a", 0, 0, mem="-0.1")])
        with pytest.raises(TraceFormatError, match="negative resource request"):
            specs_of(path)

    def test_duplicate_task_group(self, tmp_path):
        path = write_ali(
            tmp_path,
            [ali_line("M1", 2, "j", 0, 10), ali_line("M1", 3, "j", 5, 15)],
        )
        with pytest.raises(TraceFormatError, match="duplicate task group '1'") as exc:
            specs_of(path, "alibaba2018")
        assert exc.value.line == 2

    def test_cyclic_dag(self, tmp_path):
        path = write_ali(tmp_path, [ali_line("R1_1", 1, "j", 0, 10)])
        with pytest.raises(TraceFormatError, match="non-preceding parent"):
            specs_of(path, "alibaba2018")


class TestEmission:
    def test_dense_ids_and_ordered_arrivals(self, tmp_path):
        lines = []
        for i, job in enumerate("abcd"):
            lines += triplet(10 * i, job, 0)
        lines.sort(key=lambda l: float(l.split(",")[0]))
        specs = specs_of(write_g2011(tmp_path, lines))
        assert [s.job_id for s in specs] == [0, 1, 2, 3]
        arrivals = [s.arrival_time for s in specs]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0  # rebased to the first row

    def test_two_passes_identical(self, tmp_path):
        lines = [l for i in range(6) for l in triplet(7 * i, f"j{i}", i % 3)]
        lines.sort(key=lambda l: float(l.split(",")[0]))
        path = write_g2011(tmp_path, lines)
        assert [spec_to_dict(s) for s in specs_of(path)] == [
            spec_to_dict(s) for s in specs_of(path)
        ]

    def test_theta_sigma_from_observed_durations(self, tmp_path):
        lines = [
            g2011_line(0, "a", 0, 0), g2011_line(0, "a", 1, 0),
            g2011_line(1 * S, "a", 0, 1), g2011_line(1 * S, "a", 1, 1),
            g2011_line(5 * S, "a", 0, 4),   # duration 4
            g2011_line(11 * S, "a", 1, 4),  # duration 10
        ]
        (spec,) = specs_of(write_g2011(tmp_path, lines))
        phase = spec.phases[0]
        assert phase.num_tasks == 2
        assert phase.theta == pytest.approx(7.0)
        assert phase.sigma == pytest.approx(3.0)

    def test_default_theta_without_durations(self, tmp_path):
        (spec,) = specs_of(
            write_g2011(tmp_path, [g2011_line(0, "a", 0, 0)]), default_theta=42.0
        )
        assert spec.phases[0].theta == 42.0
        assert spec.phases[0].sigma == 0.0

    def test_task_count_filters(self, tmp_path):
        lines = [g2011_line(0, "big", t, 0) for t in range(5)]
        lines += [g2011_line(0, "small", 0, 0)]
        path = write_g2011(tmp_path, lines)
        assert [s.name for s in specs_of(path, min_tasks=2)] == ["google2011-big"]
        assert [s.name for s in specs_of(path, max_tasks=2)] == ["google2011-small"]

    def test_max_jobs_stops_the_stream(self, tmp_path):
        lines = [l for i in range(10) for l in triplet(10 * i, f"j{i}", 0)]
        specs = specs_of(write_g2011(tmp_path, lines), max_jobs=3)
        assert [s.job_id for s in specs] == [0, 1, 2]

    def test_alibaba_dag_phases(self, tmp_path):
        lines = [
            ali_line("M1", 4, "j", 0, 30),
            ali_line("R2_1", 2, "j", 30, 90),
            ali_line("J3_1_2", 1, "j", 90, 100),
        ]
        (spec,) = specs_of(write_ali(tmp_path, lines), "alibaba2018")
        assert [p.num_tasks for p in spec.phases] == [4, 2, 1]
        assert [p.parents for p in spec.phases] == [(), (0,), (0, 1)]
        assert spec.phases[0].theta == pytest.approx(30.0)

    def test_absent_parent_dropped(self, tmp_path):
        # R2's parent M1 fell outside the excerpt: truncation, not error.
        (spec,) = specs_of(
            write_ali(tmp_path, [ali_line("R2_1", 2, "j", 0, 60)]), "alibaba2018"
        )
        assert spec.phases[0].parents == ()


class TestPeakWindow:
    def test_find_and_apply(self, tmp_path):
        lines = [l for l in triplet(0, "early", 0)]
        # A burst of 3 jobs around t=1000, then a straggler at t=5000.
        for i, job in enumerate(("b1", "b2", "b3")):
            lines += triplet(1_000 + i, job, 0)
        lines += triplet(5_000, "late", 0)
        lines.sort(key=lambda l: float(l.split(",")[0]))
        path = write_g2011(tmp_path, lines)

        start, end = find_peak_window(open_reader(path, "google2011"), 60.0)
        assert start <= 1_000 < end

        specs = specs_of(path, window=(start, end))
        assert sorted(s.name.removeprefix("google2011-") for s in specs) == [
            "b1", "b2", "b3",
        ]
        # Arrivals rebase to the window start.
        assert min(s.arrival_time for s in specs) == pytest.approx(1_000 - start)

    def test_earliest_tie_wins(self, tmp_path):
        lines = triplet(0, "a", 0) + triplet(10_000, "b", 0)
        lines.sort(key=lambda l: float(l.split(",")[0]))
        path = write_g2011(tmp_path, lines)
        start, _end = find_peak_window(open_reader(path, "google2011"), 60.0)
        assert start == 0.0
