"""Unit tests for DAG jobs: readiness, progress, metrics, Eqs. 14–17."""

import pytest

from repro.resources import Resources
from repro.workload.distributions import Deterministic, ParetoType1
from repro.workload.job import Job
from repro.workload.phase import Phase
from repro.workload.task import TaskCopy
from tests.conftest import make_chain_job, make_diamond_job, make_single_task_job


def finish_task(task, t=1.0):
    copy = TaskCopy(task, 0, 0.0, max(t, 1e-9), is_clone=False)
    task.add_copy(copy)
    copy.finished = True
    task.complete(t)


def finish_phase(phase, t=1.0):
    for task in phase.tasks:
        finish_task(task, t)


class TestConstruction:
    def test_requires_phases(self):
        with pytest.raises(ValueError):
            Job([])

    def test_phase_indices_checked(self):
        p = Phase(1, 1, Resources.of(1, 1), Deterministic(1.0))
        with pytest.raises(ValueError):
            Job([p])

    def test_backlink_set(self):
        job = make_chain_job(2, 1)
        assert all(p.job is job for p in job.phases)

    def test_explicit_job_id(self):
        assert make_single_task_job(job_id=777).job_id == 777

    def test_auto_ids_unique(self):
        a, b = make_single_task_job(), make_single_task_job()
        assert a.job_id != b.job_id

    def test_counts(self):
        job = make_chain_job(3, 4)
        assert job.num_phases == 3
        assert job.num_tasks == 12


class TestReadiness:
    def test_chain_gates_phases(self):
        job = make_chain_job(2, 2)
        assert [p.index for p in job.ready_phases()] == [0]
        assert len(job.ready_tasks()) == 2
        finish_phase(job.phases[0])
        assert [p.index for p in job.ready_phases()] == [1]

    def test_diamond_middle_phases_parallel(self):
        job = make_diamond_job()
        finish_phase(job.phases[0])
        assert [p.index for p in job.ready_phases()] == [1, 2]
        assert len(job.ready_tasks()) == 4

    def test_join_waits_for_all_parents(self):
        job = make_diamond_job()
        finish_phase(job.phases[0])
        finish_phase(job.phases[1])
        assert 3 not in [p.index for p in job.ready_phases()]
        finish_phase(job.phases[2])
        assert [p.index for p in job.ready_phases()] == [3]

    def test_first_ready_phase_skips_fully_launched(self):
        job = make_chain_job(1, 2)
        t = job.phases[0].tasks[0]
        t.add_copy(TaskCopy(t, 0, 0.0, 5.0, is_clone=False))
        phase = job.first_ready_phase()
        assert phase is job.phases[0]  # still one pending task
        t2 = job.phases[0].tasks[1]
        t2.add_copy(TaskCopy(t2, 0, 0.0, 5.0, is_clone=False))
        assert job.first_ready_phase() is None  # nothing pending


class TestCompletion:
    def test_finish_lifecycle(self):
        job = make_chain_job(2, 1, arrival_time=5.0)
        assert not job.is_finished
        finish_phase(job.phases[0], t=10.0)
        assert not job.mark_finished_if_done(10.0)
        finish_phase(job.phases[1], t=25.0)
        assert job.mark_finished_if_done(25.0)
        assert job.finish_time == 25.0
        assert job.flowtime == 20.0

    def test_mark_finished_idempotent(self):
        job = make_single_task_job()
        finish_phase(job.phases[0], t=4.0)
        assert job.mark_finished_if_done(4.0)
        assert not job.mark_finished_if_done(9.0)
        assert job.finish_time == 4.0

    def test_flowtime_none_until_done(self):
        job = make_single_task_job()
        assert job.flowtime is None
        assert job.running_time is None


class TestEffectiveLengths:
    def test_single_phase(self):
        job = make_single_task_job(theta=10.0, sigma=4.0)
        assert job.effective_length(1.5) == pytest.approx(10.0 + 6.0)

    def test_chain_sums(self):
        job = make_chain_job(3, 1, theta=10.0)
        assert job.effective_length(1.5) == pytest.approx(30.0)

    def test_diamond_takes_critical_branch(self):
        mk = Deterministic
        phases = [
            Phase(0, 1, Resources.of(1, 1), mk(5.0)),
            Phase(1, 1, Resources.of(1, 1), mk(20.0), parents=(0,)),
            Phase(2, 1, Resources.of(1, 1), mk(3.0), parents=(0,)),
            Phase(3, 1, Resources.of(1, 1), mk(2.0), parents=(1, 2)),
        ]
        job = Job(phases)
        assert job.effective_length(0.0) == pytest.approx(27.0)

    def test_remaining_length_shrinks(self):
        job = make_chain_job(3, 1, theta=10.0)
        assert job.remaining_effective_length(0.0) == pytest.approx(30.0)
        finish_phase(job.phases[0])
        assert job.remaining_effective_length(0.0) == pytest.approx(20.0)

    def test_remaining_phases(self):
        job = make_chain_job(2, 1)
        finish_phase(job.phases[0])
        assert [p.index for p in job.remaining_phases()] == [1]


class TestMetrics:
    def test_resource_usage_counts_all_copies(self):
        job = make_single_task_job(cpu=2.0, mem=3.0)
        t = job.phases[0].tasks[0]
        t.add_copy(TaskCopy(t, 0, 0.0, 10.0, is_clone=False))
        t.add_copy(TaskCopy(t, 1, 0.0, 4.0, is_clone=True))
        # (2+3) * (10+4)
        assert job.resource_usage() == pytest.approx(70.0)

    def test_first_start_time(self):
        job = make_chain_job(1, 2)
        assert job.first_start_time() is None
        t = job.phases[0].tasks[1]
        t.add_copy(TaskCopy(t, 0, 7.0, 1.0, is_clone=False))
        assert job.first_start_time() == 7.0
