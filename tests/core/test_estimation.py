"""Tests for the AM statistics estimation (Sec. 5.2)."""

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.core.estimation import EstimatingDollyMPScheduler, PhaseStatsEstimator
from repro.core.online import DollyMPScheduler
from repro.resources import Resources
from repro.sim.runner import run_simulation
from repro.workload.distributions import Deterministic, ParetoType1
from repro.workload.job import Job
from repro.workload.phase import Phase
from repro.workload.task import TaskCopy
from tests.conftest import make_chain_job


def finished_phase_with_durations(durations, name="map", job_name="jobA"):
    phase = Phase(0, len(durations), Resources.of(1, 1), Deterministic(999.0), name=name)
    job = Job([phase], name=job_name)
    for task, d in zip(phase.tasks, durations):
        c = TaskCopy(task, 0, 0.0, d, is_clone=False)
        task.add_copy(c)
        c.finished = True
        task.complete(d)
    return job, phase


class TestValidation:
    def test_params(self):
        with pytest.raises(ValueError):
            PhaseStatsEstimator(min_task_samples=0)
        with pytest.raises(ValueError):
            PhaseStatsEstimator(max_history=1)
        with pytest.raises(ValueError):
            PhaseStatsEstimator(default_cv=-0.1)


class TestTiers:
    def test_tier3_falls_back_to_hint(self):
        est = PhaseStatsEstimator()
        phase = Phase(0, 4, Resources.of(1, 1), ParetoType1.from_moments(30.0, 12.0))
        job = Job([phase], name="fresh")
        theta, sigma = est.estimate(job, phase)
        assert theta == pytest.approx(30.0)
        assert sigma == pytest.approx(12.0)

    def test_tier3_default_cv_for_deterministic_hint(self):
        est = PhaseStatsEstimator(default_cv=0.5)
        phase = Phase(0, 1, Resources.of(1, 1), Deterministic(10.0))
        job = Job([phase], name="fresh")
        theta, sigma = est.estimate(job, phase)
        assert (theta, sigma) == (10.0, 5.0)

    def test_tier2_uses_current_phase_samples(self):
        est = PhaseStatsEstimator(min_task_samples=3)
        job, phase = finished_phase_with_durations([10.0, 12.0, 14.0])
        theta, sigma = est.estimate(job, phase)
        assert theta == pytest.approx(12.0)
        assert sigma == pytest.approx(2.0)  # sample std

    def test_tier1_uses_recurring_history(self):
        est = PhaseStatsEstimator(min_task_samples=3)
        # A prior run of "jobA" completes; record its tasks.
        prior, prior_phase = finished_phase_with_durations([20.0, 20.0, 20.0])
        for t in prior_phase.tasks:
            est.record_task(t)
        # A new submission of the same recurring job: no tasks done yet.
        fresh_phase = Phase(0, 5, Resources.of(1, 1), Deterministic(999.0), name="map")
        fresh = Job([fresh_phase], name="jobA")
        theta, sigma = est.estimate(fresh, fresh_phase)
        assert theta == pytest.approx(20.0)  # history, not the 999 hint

    def test_current_phase_beats_history(self):
        est = PhaseStatsEstimator(min_task_samples=2)
        prior, prior_phase = finished_phase_with_durations([50.0, 50.0], job_name="J")
        for t in prior_phase.tasks:
            est.record_task(t)
        job, phase = finished_phase_with_durations([10.0, 10.0], job_name="J")
        theta, _ = est.estimate(job, phase)
        assert theta == pytest.approx(10.0)

    def test_history_bounded(self):
        est = PhaseStatsEstimator(max_history=4)
        job, phase = finished_phase_with_durations([1.0] * 10, job_name="H")
        for t in phase.tasks:
            est.record_task(t)
        assert est.history_size(job, phase) == 4

    def test_different_job_names_do_not_share_history(self):
        est = PhaseStatsEstimator(min_task_samples=1)
        prior, prior_phase = finished_phase_with_durations([5.0], job_name="A")
        est.record_task(prior_phase.tasks[0])
        other_phase = Phase(0, 1, Resources.of(1, 1), Deterministic(99.0), name="map")
        other = Job([other_phase], name="B")
        theta, _ = est.estimate(other, other_phase)
        assert theta == pytest.approx(99.0)  # falls back to hint


class TestMeasure:
    def test_measure_matches_truth_when_hinted(self):
        from repro.core.volume import measure_job

        est = PhaseStatsEstimator()
        job = make_chain_job(2, 3, cpu=10.0, mem=10.0, theta=10.0, sigma=4.0)
        total = Resources.of(100, 200)
        m_est = est.measure_job(job, total, r=1.5)
        m_true = measure_job(job, total, r=1.5)
        assert m_est.volume == pytest.approx(m_true.volume)
        assert m_est.length == pytest.approx(m_true.length)


class TestEstimatingScheduler:
    def test_completes_workload(self):
        cluster = homogeneous_cluster(2, Resources.of(8, 16))
        jobs = [
            make_chain_job(2, 4, theta=8.0, sigma=3.0, arrival_time=10.0 * k, job_id=k)
            for k in range(6)
        ]
        res = run_simulation(
            cluster, EstimatingDollyMPScheduler(max_clones=2), jobs, seed=5, max_time=1e6
        )
        assert res.num_jobs == 6
        assert res.scheduler_name == "EstimatingDollyMP^2"

    def test_close_to_clairvoyant_on_recurring_workload(self):
        """With recurring jobs, estimated stats converge and performance
        approaches the ground-truth scheduler's."""

        def make_jobs():
            return [
                make_chain_job(
                    1, 6, theta=10.0, sigma=4.0, arrival_time=25.0 * k,
                    job_id=k, name="recurring-wc",
                )
                for k in range(20)
            ]

        def run_with(sched):
            return run_simulation(
                homogeneous_cluster(2, Resources.of(8, 16)),
                sched,
                make_jobs(),
                seed=8,
                max_time=1e6,
            )

        truth = run_with(DollyMPScheduler(max_clones=2))
        estimated = run_with(EstimatingDollyMPScheduler(max_clones=2))
        assert estimated.total_flowtime <= 1.25 * truth.total_flowtime
