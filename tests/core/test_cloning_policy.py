"""Unit tests for the cloning policy and delay assignment (Secs. 4.1, 5, 5.2)."""

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.core.cloning_policy import (
    CloningPolicy,
    clone_resource_occupancy,
    delay_assignment_map,
)
from repro.resources import Resources
from repro.workload.distributions import ParetoType1
from repro.workload.job import Job
from repro.workload.phase import Phase
from repro.workload.task import TaskCopy


def running_task(theta=10.0, sigma=5.0, cpu=1.0, mem=1.0):
    phase = Phase(0, 1, Resources.of(cpu, mem), ParetoType1.from_moments(theta, sigma))
    Job([phase])
    task = phase.tasks[0]
    task.add_copy(TaskCopy(task, 0, 0.0, 10.0, is_clone=False))
    return task


class TestPolicyValidation:
    def test_defaults_match_paper(self):
        p = CloningPolicy()
        assert p.max_clones == 2  # "the maximum number of clones ... is two"
        assert p.budget_fraction == 0.3  # δ = 0.3 (Sec. 6.1)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CloningPolicy(max_clones=-1)
        with pytest.raises(ValueError):
            CloningPolicy(budget_fraction=1.5)

    def test_max_copies(self):
        assert CloningPolicy(max_clones=2).max_copies == 3


class TestMayClone:
    def test_zero_clones_never(self):
        assert not CloningPolicy(max_clones=0).may_clone(running_task())

    def test_pending_task_never_cloned(self):
        phase = Phase(0, 1, Resources.of(1, 1), ParetoType1.from_moments(5, 2))
        Job([phase])
        assert not CloningPolicy(max_clones=2).may_clone(phase.tasks[0])

    def test_running_task_cloneable(self):
        assert CloningPolicy(max_clones=2).may_clone(running_task())

    def test_cap_respected(self):
        policy = CloningPolicy(max_clones=1)
        task = running_task()
        task.add_copy(TaskCopy(task, 1, 0.0, 10.0, is_clone=True))
        assert not policy.may_clone(task)

    def test_killed_copy_frees_slot(self):
        policy = CloningPolicy(max_clones=1)
        task = running_task()
        clone = TaskCopy(task, 1, 0.0, 10.0, is_clone=True)
        task.add_copy(clone)
        clone.killed = True
        assert policy.may_clone(task)

    def test_category_target_limits_copies(self):
        """Cor. 4.1 mode: r_j copies suffice to meet the category length."""
        policy = CloningPolicy(max_clones=3, use_category_target=True)
        task = running_task(theta=10.0, sigma=5.0)
        h = task.phase.speedup
        # Category long enough that one copy suffices → no clone wanted.
        loose = 2.0 * 10.0 / h(1)
        assert not policy.may_clone(task, category_length=loose)
        # Tight category → cloning allowed up to the cap.
        assert policy.may_clone(task, category_length=9.0)


class TestBudget:
    def test_occupancy_counts_only_live_clones(self):
        cluster = homogeneous_cluster(2, Resources.of(8, 8))
        task = running_task(cpu=2.0, mem=2.0)
        orig = task.copies[0]
        cluster[0].allocate(orig)
        assert clone_resource_occupancy(cluster).is_zero()
        clone = TaskCopy(task, 1, 0.0, 10.0, is_clone=True)
        task.add_copy(clone)
        cluster[1].allocate(clone)
        assert clone_resource_occupancy(cluster) == Resources.of(2, 2)

    def test_budget_remaining(self):
        cluster = homogeneous_cluster(2, Resources.of(10, 10))  # total (20,20)
        policy = CloningPolicy(budget_fraction=0.25)
        rem = policy.budget_remaining(cluster)
        assert rem == Resources.of(5, 5)

    def test_budget_disabled_at_one(self):
        cluster = homogeneous_cluster(1, Resources.of(10, 10))
        policy = CloningPolicy(budget_fraction=1.0)
        assert policy.budget_remaining(cluster) == cluster.total_capacity

    def test_within_budget(self):
        cluster = homogeneous_cluster(1, Resources.of(10, 10))
        policy = CloningPolicy(budget_fraction=0.3)
        assert policy.within_budget(cluster, Resources.of(3, 3))
        assert not policy.within_budget(cluster, Resources.of(4, 3))


class TestDelayAssignment:
    def test_more_upstream_than_downstream(self):
        # 4 upstream copies, 2 downstream: each downstream gets two feeds,
        # dealt round-robin from the earliest finishers.
        got = delay_assignment_map(4, 2)
        assert got == {0: [0, 2], 1: [1, 3]}

    def test_excess_upstream_ignored_beyond_two_each(self):
        got = delay_assignment_map(10, 2)
        assert all(len(v) == 2 for v in got.values())

    def test_fewer_upstream_than_downstream(self):
        # First finisher feeds everyone (Sec. 5.2 second case).
        got = delay_assignment_map(1, 3)
        assert got == {0: [0], 1: [0], 2: [0]}

    def test_equal_counts(self):
        got = delay_assignment_map(2, 2)
        assert got == {0: [0], 1: [1]}

    def test_validation(self):
        with pytest.raises(ValueError):
            delay_assignment_map(0, 1)
        with pytest.raises(ValueError):
            delay_assignment_map(1, 0)


class TestDelayAssignmentAliasing:
    """Sec. 5.2 wiring pins (ISSUE audit): the 1-upstream fan-out map
    must not share list objects between downstream copies."""

    def test_fanout_lists_are_distinct_objects(self):
        got = delay_assignment_map(1, 3)
        assert got == {0: [0], 1: [0], 2: [0]}
        assert got[0] is not got[1] and got[1] is not got[2]
        got[0].append(99)  # mutating one entry must not leak
        assert got[1] == [0] and got[2] == [0]

    def test_round_robin_lists_are_distinct_objects(self):
        got = delay_assignment_map(4, 2)
        assert got[0] is not got[1]

    def test_odd_split_three_up_two_down(self):
        # 3 feeds dealt round-robin: downstream 0 gets {0, 2}, 1 gets {1}.
        got = delay_assignment_map(3, 2)
        assert got == {0: [0, 2], 1: [1]}

    def test_single_up_single_down(self):
        assert delay_assignment_map(1, 1) == {0: [0]}


class TestBudgetReturnRegression:
    """δ-budget conservation under churny clone lifecycles (ISSUE
    bugfix): resources released by finished/killed clones must return to
    the budget promptly, and a drained engine must expose the full
    ceiling again — bitwise, not within-epsilon."""

    @staticmethod
    def _make_engine(scheduler, jobs, **kw):
        from repro.sim.engine import SimulationEngine

        cluster = homogeneous_cluster(3, Resources.of(4, 4), slowdown=1.0)
        return SimulationEngine(cluster, scheduler, jobs, sanitize=True, **kw)

    def test_occupancy_snaps_to_zero_after_drain(self):
        from repro.schedulers.base import Scheduler
        from tests.conftest import make_single_task_job

        class CloneTwice(Scheduler):
            name = "clone-twice"

            def schedule(self, view):
                for j in view.active_jobs:
                    for t in j.ready_tasks():
                        view.launch(t, view.cluster[0])
                        view.launch(t, view.cluster[1], clone=True)
                        view.launch(t, view.cluster[2], clone=True)

        jobs = [
            make_single_task_job(theta=10.0, arrival_time=20.0 * i, job_id=i)
            for i in range(4)
        ]
        engine = self._make_engine(CloneTwice(), jobs)
        engine.run()
        # Bitwise zero — not just within epsilon: the engine snaps the
        # incremental occupancy when the last live clone exits, so float
        # subtraction dust cannot accumulate across clone waves.
        assert engine.clone_occupancy == Resources(0.0, 0.0)
        policy = CloningPolicy(budget_fraction=0.3)
        full = policy.budget_remaining(engine.cluster)
        assert policy.budget_remaining(
            engine.cluster, occupancy=engine.clone_occupancy
        ) == full

    def test_budget_exhaustion_and_return(self):
        """Drive the budget to exhaustion, drain the wave, and observe
        the next wave seeing the full budget again."""
        from repro.schedulers.base import Scheduler
        from tests.conftest import make_single_task_job

        policy = CloningPolicy(max_clones=2, budget_fraction=0.2)
        observed = []

        class BudgetedCloner(Scheduler):
            name = "budgeted-cloner"

            def schedule(self, view):
                observed.append((view.time, view.clone_occupancy))
                for j in view.active_jobs:
                    for t in j.ready_tasks():
                        view.launch(t, view.cluster[0])
                    for phase in j.phases:
                        for t in phase.tasks:
                            while policy.may_clone(t) and policy.within_budget(
                                view.cluster, t.demand,
                                occupancy=view.clone_occupancy,
                            ):
                                server = view.cluster.best_fit_server(t.demand)
                                if server is None:
                                    break
                                view.launch(t, server, clone=True)
                # Post-launch snapshot: captures the within-wave peak.
                observed.append((view.time, view.clone_occupancy))

        # Wave 1 at t=0, wave 2 at t=50 (wave 1 fully drained by then).
        jobs = [
            make_single_task_job(cpu=1.0, mem=1.0, theta=10.0, job_id=0),
            make_single_task_job(
                cpu=1.0, mem=1.0, theta=10.0, arrival_time=50.0, job_id=1
            ),
        ]
        engine = self._make_engine(BudgetedCloner(), jobs)
        engine.run()
        # Budget ceiling: 20% of (12, 12) = (2.4, 2.4) → two 1×1 clones
        # fit, a third does not: exhaustion reached in wave 1.
        assert engine.clones_launched == 4  # two per wave
        peak = max(occ.cpu for _, occ in observed)
        assert peak == pytest.approx(2.0)
        # The first pass at t=50 (wave 2's arrival, before its launches)
        # saw the budget fully returned — bitwise.
        wave2 = [occ for t, occ in observed if t == 50.0]
        assert wave2, "no schedule pass observed at wave 2's arrival"
        assert wave2[0] == Resources(0.0, 0.0)
        assert engine.clone_occupancy == Resources(0.0, 0.0)

    def test_fault_killed_clone_returns_budget(self):
        """A clone lost to a server crash returns its budget share
        immediately (the sweep's headline bug: fault kills bypassed the
        return path)."""
        from repro.schedulers.base import Scheduler
        from repro.sim.actions import Fail
        from tests.conftest import make_single_task_job

        class CrashCloneServer(Scheduler):
            name = "crash-clone-server"

            def __init__(self):
                self.crashed = False

            def schedule(self, view):
                for j in view.active_jobs:
                    for t in j.ready_tasks():
                        view.launch(t, view.cluster[0])
                        view.launch(t, view.cluster[1], clone=True)
                if not self.crashed and view.cluster[1].running_copies:
                    self.crashed = True
                    assert view.clone_occupancy.cpu > 0.0
                    view.apply(Fail(view.cluster[1]))
                    # The clone died with its server: budget back, bitwise.
                    assert view.clone_occupancy == Resources(0.0, 0.0)

        jobs = [make_single_task_job(theta=10.0, job_id=0)]
        engine = self._make_engine(CrashCloneServer(), jobs)
        result = engine.run()
        assert len(result.records) == 1
        assert engine.recoveries_masked_by_clone == 1
        assert engine.clone_occupancy == Resources(0.0, 0.0)
