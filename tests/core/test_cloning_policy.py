"""Unit tests for the cloning policy and delay assignment (Secs. 4.1, 5, 5.2)."""

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.core.cloning_policy import (
    CloningPolicy,
    clone_resource_occupancy,
    delay_assignment_map,
)
from repro.resources import Resources
from repro.workload.distributions import ParetoType1
from repro.workload.job import Job
from repro.workload.phase import Phase
from repro.workload.task import TaskCopy


def running_task(theta=10.0, sigma=5.0, cpu=1.0, mem=1.0):
    phase = Phase(0, 1, Resources.of(cpu, mem), ParetoType1.from_moments(theta, sigma))
    Job([phase])
    task = phase.tasks[0]
    task.add_copy(TaskCopy(task, 0, 0.0, 10.0, is_clone=False))
    return task


class TestPolicyValidation:
    def test_defaults_match_paper(self):
        p = CloningPolicy()
        assert p.max_clones == 2  # "the maximum number of clones ... is two"
        assert p.budget_fraction == 0.3  # δ = 0.3 (Sec. 6.1)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CloningPolicy(max_clones=-1)
        with pytest.raises(ValueError):
            CloningPolicy(budget_fraction=1.5)

    def test_max_copies(self):
        assert CloningPolicy(max_clones=2).max_copies == 3


class TestMayClone:
    def test_zero_clones_never(self):
        assert not CloningPolicy(max_clones=0).may_clone(running_task())

    def test_pending_task_never_cloned(self):
        phase = Phase(0, 1, Resources.of(1, 1), ParetoType1.from_moments(5, 2))
        Job([phase])
        assert not CloningPolicy(max_clones=2).may_clone(phase.tasks[0])

    def test_running_task_cloneable(self):
        assert CloningPolicy(max_clones=2).may_clone(running_task())

    def test_cap_respected(self):
        policy = CloningPolicy(max_clones=1)
        task = running_task()
        task.add_copy(TaskCopy(task, 1, 0.0, 10.0, is_clone=True))
        assert not policy.may_clone(task)

    def test_killed_copy_frees_slot(self):
        policy = CloningPolicy(max_clones=1)
        task = running_task()
        clone = TaskCopy(task, 1, 0.0, 10.0, is_clone=True)
        task.add_copy(clone)
        clone.killed = True
        assert policy.may_clone(task)

    def test_category_target_limits_copies(self):
        """Cor. 4.1 mode: r_j copies suffice to meet the category length."""
        policy = CloningPolicy(max_clones=3, use_category_target=True)
        task = running_task(theta=10.0, sigma=5.0)
        h = task.phase.speedup
        # Category long enough that one copy suffices → no clone wanted.
        loose = 2.0 * 10.0 / h(1)
        assert not policy.may_clone(task, category_length=loose)
        # Tight category → cloning allowed up to the cap.
        assert policy.may_clone(task, category_length=9.0)


class TestBudget:
    def test_occupancy_counts_only_live_clones(self):
        cluster = homogeneous_cluster(2, Resources.of(8, 8))
        task = running_task(cpu=2.0, mem=2.0)
        orig = task.copies[0]
        cluster[0].allocate(orig)
        assert clone_resource_occupancy(cluster).is_zero()
        clone = TaskCopy(task, 1, 0.0, 10.0, is_clone=True)
        task.add_copy(clone)
        cluster[1].allocate(clone)
        assert clone_resource_occupancy(cluster) == Resources.of(2, 2)

    def test_budget_remaining(self):
        cluster = homogeneous_cluster(2, Resources.of(10, 10))  # total (20,20)
        policy = CloningPolicy(budget_fraction=0.25)
        rem = policy.budget_remaining(cluster)
        assert rem == Resources.of(5, 5)

    def test_budget_disabled_at_one(self):
        cluster = homogeneous_cluster(1, Resources.of(10, 10))
        policy = CloningPolicy(budget_fraction=1.0)
        assert policy.budget_remaining(cluster) == cluster.total_capacity

    def test_within_budget(self):
        cluster = homogeneous_cluster(1, Resources.of(10, 10))
        policy = CloningPolicy(budget_fraction=0.3)
        assert policy.within_budget(cluster, Resources.of(3, 3))
        assert not policy.within_budget(cluster, Resources.of(4, 3))


class TestDelayAssignment:
    def test_more_upstream_than_downstream(self):
        # 4 upstream copies, 2 downstream: each downstream gets two feeds,
        # dealt round-robin from the earliest finishers.
        got = delay_assignment_map(4, 2)
        assert got == {0: [0, 2], 1: [1, 3]}

    def test_excess_upstream_ignored_beyond_two_each(self):
        got = delay_assignment_map(10, 2)
        assert all(len(v) == 2 for v in got.values())

    def test_fewer_upstream_than_downstream(self):
        # First finisher feeds everyone (Sec. 5.2 second case).
        got = delay_assignment_map(1, 3)
        assert got == {0: [0], 1: [0], 2: [0]}

    def test_equal_counts(self):
        got = delay_assignment_map(2, 2)
        assert got == {0: [0], 1: [1]}

    def test_validation(self):
        with pytest.raises(ValueError):
            delay_assignment_map(0, 1)
        with pytest.raises(ValueError):
            delay_assignment_map(1, 0)
