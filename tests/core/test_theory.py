"""Unit tests for the Sec. 4.1 closed forms and Theorem 1 machinery."""

import numpy as np
import pytest

from repro.core.theory import (
    cloning_helps_condition,
    empirical_competitive_ratio,
    flow_schedule_all_then_clone_smallest,
    flow_serial_maximal_cloning,
    flow_two_clones_smallest_first,
    flowtime_lower_bound,
    theorem1_bound_holds,
)
from repro.core.transient import compute_priorities
from repro.core.volume import JobMeasure
from repro.workload.speedup import ParetoSpeedup


def m(job_id, volume, length, share=0.1):
    return JobMeasure(
        job_id=job_id, volume=volume, length=length, max_dominant_share=share
    )


class TestClosedForms:
    def test_flow1_formula(self):
        h = ParetoSpeedup(2.0)  # h(2) = 1.5
        assert flow_schedule_all_then_clone_smallest(5, h) == pytest.approx(
            4 + 1 / 1.5
        )

    def test_flow2_formula(self):
        h = ParetoSpeedup(2.0)
        expected = sum(j / h(2.0**j) for j in range(1, 4))
        assert flow_serial_maximal_cloning(3, h) == pytest.approx(expected)

    def test_flow3_formula(self):
        h = ParetoSpeedup(2.0)
        assert flow_two_clones_smallest_first(5, h) == pytest.approx(6 / 1.5)

    def test_paper_ordering_flow3_lt_flow1_lt_flow2(self):
        """The Sec. 4.1 conclusion for a Pareto speedup and large N."""
        alpha = 2.0
        h = ParetoSpeedup(alpha)
        for n in range(4, 30):
            assert cloning_helps_condition(n, alpha)
            f1 = flow_schedule_all_then_clone_smallest(n, h)
            f2 = flow_serial_maximal_cloning(n, h)
            f3 = flow_two_clones_smallest_first(n, h)
            assert f3 < f1 < f2, f"ordering broken at N={n}"

    def test_condition_false_for_tiny_n(self):
        assert not cloning_helps_condition(2, 2.0)

    def test_validation(self):
        h = ParetoSpeedup(2.0)
        with pytest.raises(ValueError):
            flow_schedule_all_then_clone_smallest(0, h)
        with pytest.raises(ValueError):
            cloning_helps_condition(5, 1.0)


class TestLowerBound:
    def test_empty(self):
        assert flowtime_lower_bound([]) == 0.0

    def test_single_job_at_least_its_volume(self):
        lb = flowtime_lower_bound([m(0, 5.0, 5.0)])
        assert lb >= 5.0

    def test_volume_bound_tight_for_saturating_jobs(self):
        """n identical unit-volume jobs on capacity 1: F* ≥ 1+2+…+n."""
        n = 6
        measures = [m(i, 1.0, 1.0, share=1.0) for i in range(n)]
        assert flowtime_lower_bound(measures) >= n * (n + 1) / 2

    def test_monotone_in_job_count(self):
        small = [m(i, 1.0, 2.0) for i in range(3)]
        big = small + [m(9, 1.0, 2.0)]
        assert flowtime_lower_bound(big) > flowtime_lower_bound(small)

    def test_serial_schedule_dominates_bound(self):
        """A feasible serial schedule's flowtime must be ≥ the bound."""
        rng = np.random.default_rng(3)
        for _ in range(20):
            n = int(rng.integers(1, 10))
            measures = [
                m(i, float(rng.uniform(0.1, 2.0)), float(rng.uniform(0.5, 4.0)), share=1.0)
                for i in range(n)
            ]
            # Serial SRPT-by-length schedule on capacity 1 (lengths define
            # the serial service times; every job occupies the machine).
            order = sorted(measures, key=lambda x: x.length)
            t, flow = 0.0, 0.0
            for job in order:
                t += job.length
                flow += t
            assert flow >= flowtime_lower_bound(measures) - 1e-9


class TestTheorem1:
    def test_ratio_computation(self):
        measures = [m(i, 1.0, 1.0) for i in range(4)]
        lb = flowtime_lower_bound(measures)
        assert empirical_competitive_ratio(2 * lb, measures) == pytest.approx(2.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            empirical_competitive_ratio(1.0, [])

    def test_bound_holds_for_priority_order_schedule(self):
        """Simulate Algorithm 1's order serially: must stay within 6R."""
        rng = np.random.default_rng(11)
        h = ParetoSpeedup(3.0)  # R = 1.5
        for _ in range(20):
            n = int(rng.integers(2, 12))
            measures = [
                m(
                    i,
                    float(rng.uniform(0.05, 3.0)),
                    float(rng.uniform(0.5, 8.0)),
                    share=1.0,
                )
                for i in range(n)
            ]
            prios = compute_priorities(measures)
            order = sorted(measures, key=lambda x: (prios[x.job_id], x.volume))
            t, flow = 0.0, 0.0
            for job in order:
                t += job.length
                flow += t
            assert theorem1_bound_holds(flow, measures, h.bound)

    def test_bad_speedup_bound_rejected(self):
        with pytest.raises(ValueError):
            theorem1_bound_holds(1.0, [m(0, 1.0, 1.0)], 0.5)
