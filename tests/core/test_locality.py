"""Tests for the AM's second-level locality scheduling (Sec. 5.2)."""

import pytest

from repro.cluster.topology import Topology
from repro.core.locality import (
    assign_tasks_to_containers,
    best_locality_copy,
    clone_placement_order,
)
from repro.resources import Resources
from repro.workload.distributions import Deterministic
from repro.workload.job import Job
from repro.workload.phase import Phase
from repro.workload.task import TaskCopy


def make_tasks(n, preferred=()):
    phase = Phase(0, n, Resources.of(1, 1), Deterministic(10.0))
    Job([phase])
    for t in phase.tasks:
        t.preferred_servers = tuple(preferred)
    return phase.tasks


# Topology: servers 0,1 in rack 0; servers 2,3 in rack 1.
TOPO = Topology([0, 0, 1, 1])


class TestAssignment:
    def test_node_local_preferred(self):
        (task,) = make_tasks(1, preferred=[2])
        got = assign_tasks_to_containers(TOPO, [task], [0, 2])
        assert got[task] == 2

    def test_rack_local_over_off_rack(self):
        (task,) = make_tasks(1, preferred=[3])
        # No container on 3; server 2 is rack-local, 0 is off-rack.
        got = assign_tasks_to_containers(TOPO, [task], [0, 2])
        assert got[task] == 2

    def test_all_tasks_assigned_when_enough_containers(self):
        tasks = make_tasks(3, preferred=[0])
        got = assign_tasks_to_containers(TOPO, tasks, [0, 1, 2])
        assert len(got) == 3
        assert sorted(got.values()) == [0, 1, 2]
        # The node-local container goes to some task (greedy level 0).
        assert 0 in got.values()

    def test_excess_tasks_left_unassigned(self):
        tasks = make_tasks(3)
        got = assign_tasks_to_containers(TOPO, tasks, [1])
        assert len(got) == 1

    def test_excess_containers_unused(self):
        (task,) = make_tasks(1, preferred=[0])
        got = assign_tasks_to_containers(TOPO, [task], [0, 1, 2, 3])
        assert got == {task: 0}

    def test_no_preference_treated_as_local(self):
        (task,) = make_tasks(1)
        got = assign_tasks_to_containers(TOPO, [task], [3])
        assert got[task] == 3

    def test_competing_tasks_both_get_best_feasible(self):
        a, b = make_tasks(2, preferred=[0])
        got = assign_tasks_to_containers(TOPO, [a, b], [0, 1])
        # One gets the node-local 0, the other the rack-local 1.
        assert sorted(got.values()) == [0, 1]


class TestKeepBestCopy:
    def test_prefers_node_local(self):
        (task,) = make_tasks(1, preferred=[2])
        far = TaskCopy(task, 0, 0.0, 10.0, is_clone=False)
        near = TaskCopy(task, 2, 1.0, 10.0, is_clone=True)
        task.add_copy(far)
        task.add_copy(near)
        assert best_locality_copy(TOPO, task.copies) is near

    def test_tie_broken_by_progress(self):
        (task,) = make_tasks(1, preferred=[0])
        older = TaskCopy(task, 2, 0.0, 10.0, is_clone=False)
        newer = TaskCopy(task, 3, 5.0, 10.0, is_clone=True)
        task.add_copy(older)
        task.add_copy(newer)
        assert best_locality_copy(TOPO, task.copies) is older

    def test_ignores_dead_copies(self):
        (task,) = make_tasks(1, preferred=[0])
        local = TaskCopy(task, 0, 0.0, 10.0, is_clone=False)
        remote = TaskCopy(task, 3, 0.0, 10.0, is_clone=True)
        task.add_copy(local)
        task.add_copy(remote)
        local.killed = True
        assert best_locality_copy(TOPO, task.copies) is remote

    def test_no_live_copies_raises(self):
        (task,) = make_tasks(1)
        c = TaskCopy(task, 0, 0.0, 10.0, is_clone=False)
        task.add_copy(c)
        c.killed = True
        with pytest.raises(ValueError):
            best_locality_copy(TOPO, task.copies)


class TestClonePlacementOrder:
    def test_replicas_first_then_rack_then_rest(self):
        (task,) = make_tasks(1, preferred=[1])
        order = clone_placement_order(TOPO, task, [3, 2, 1, 0])
        assert order == [1, 0, 2, 3]

    def test_stable_within_level(self):
        (task,) = make_tasks(1, preferred=[])
        # No constraint: everything node-local, sorted by id.
        assert clone_placement_order(TOPO, task, [2, 0, 3]) == [0, 2, 3]
