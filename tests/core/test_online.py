"""Behavioural tests for the DollyMP online scheduler (Algorithm 2)."""

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster, single_server_cluster
from repro.core.online import DollyMPScheduler
from repro.resources import Resources
from repro.schedulers.tetris import TetrisScheduler
from repro.sim.engine import SimulationEngine
from repro.sim.runner import run_simulation
from repro.workload.distributions import Deterministic
from repro.workload.job import Job
from repro.workload.phase import Phase
from tests.conftest import make_chain_job, make_single_task_job


def fig2_jobs():
    """The Fig. 2 motivating instance (one unit-capacity server)."""
    big = Job([Phase(0, 1, Resources.of(1.0, 1.0), Deterministic(36.0))], job_id=1)
    small_a = Job([Phase(0, 1, Resources.of(0.5, 0.5), Deterministic(8.0))], job_id=2)
    small_b = Job([Phase(0, 1, Resources.of(0.5, 0.5), Deterministic(8.0))], job_id=3)
    return [big, small_a, small_b]


class TestConstruction:
    def test_name_encodes_clone_count(self):
        assert DollyMPScheduler(max_clones=0).name == "DollyMP^0"
        assert DollyMPScheduler(max_clones=2).name == "DollyMP^2"

    def test_rejects_negative_r(self):
        with pytest.raises(ValueError):
            DollyMPScheduler(r=-1.0)

    def test_paper_defaults(self):
        s = DollyMPScheduler()
        assert s.policy.max_clones == 2
        assert s.r == 1.5
        assert s.policy.budget_fraction == 0.3


class TestFig2Scheduling:
    def test_small_jobs_before_big(self):
        """DollyMP scheduling order beats Tetris' on the Fig. 2 instance:
        Jobs 2 and 3 run first (total 28 s without clones vs Tetris 46 s)."""
        cluster = single_server_cluster(Resources.of(1.0, 1.0))
        jobs = fig2_jobs()
        res = run_simulation(
            cluster, DollyMPScheduler(max_clones=0), jobs, max_time=1e5
        )
        big, small_a, small_b = jobs
        assert small_a.finish_time == pytest.approx(8.0)
        assert small_b.finish_time == pytest.approx(8.0)
        assert big.finish_time == pytest.approx(44.0)
        # Total completion = 8 + 8 + 44 = 60... the paper counts
        # completion since t=0 per job then sums: 8+8+44 = 60?  The
        # paper's "28" counts 8 + (8+...)?  We check the *ordering* and
        # that DollyMP beats Tetris' total below.
        tetris = run_simulation(
            single_server_cluster(Resources.of(1.0, 1.0)),
            TetrisScheduler(),
            fig2_jobs(),
            max_time=1e5,
        )
        assert res.total_flowtime < tetris.total_flowtime


class TestPriorities:
    def test_recompute_on_arrival(self):
        cluster = homogeneous_cluster(2, Resources.of(8, 8))
        sched = DollyMPScheduler(max_clones=0)
        jobs = [
            make_single_task_job(theta=5.0, arrival_time=0.0, job_id=1),
            make_single_task_job(theta=500.0, arrival_time=1.0, job_id=2),
        ]
        engine = SimulationEngine(cluster, sched, jobs, max_time=1e5)
        engine.run()
        # After the second arrival both jobs were ranked.
        assert sched.priority_of(jobs[0]) is not None or jobs[0].is_finished

    def test_defensive_recompute_in_schedule(self):
        """schedule() ranks jobs even if the arrival hook never fired."""
        cluster = homogeneous_cluster(1, Resources.of(8, 8))
        sched = DollyMPScheduler(max_clones=0)
        job = make_single_task_job(theta=5.0, job_id=3)
        engine = SimulationEngine(cluster, sched, [job], max_time=1e5)
        engine.active_jobs[job.job_id] = job  # bypass arrival hook
        sched.schedule(engine.view)
        assert job.phases[0].tasks[0].has_run


class TestCloning:
    def test_clones_only_after_normal_tasks(self):
        """With exactly enough capacity for all tasks, no clones launch."""
        cluster = homogeneous_cluster(1, Resources.of(4, 8))
        job = make_chain_job(1, 4, cpu=1.0, mem=2.0, theta=10.0, sigma=5.0)
        engine = SimulationEngine(
            cluster, DollyMPScheduler(max_clones=2, delta=1.0), [job], max_time=1e5
        )
        engine.run()
        # All four tasks ran; cloning impossible (no leftover), so each
        # task has exactly one copy at the start.  (After a task finishes
        # leftover appears and remaining tasks may be cloned — allowed.)
        assert engine.copies_launched >= 4

    def test_idle_resources_host_clones(self):
        cluster = homogeneous_cluster(2, Resources.of(8, 16))
        job = make_chain_job(1, 2, theta=10.0, sigma=5.0)
        engine = SimulationEngine(
            cluster, DollyMPScheduler(max_clones=2, delta=1.0), [job], max_time=1e5
        )
        engine.run()
        assert engine.clones_launched > 0
        for t in job.phases[0].tasks:
            assert len(t.copies) <= 3  # ≤ 2 extra clones

    def test_max_clones_zero_never_clones(self):
        cluster = homogeneous_cluster(2, Resources.of(8, 16))
        job = make_chain_job(1, 2, theta=10.0, sigma=5.0)
        engine = SimulationEngine(
            cluster, DollyMPScheduler(max_clones=0), [job], max_time=1e5
        )
        engine.run()
        assert engine.clones_launched == 0

    def test_clone_cap_respected(self):
        for cap in (1, 2, 3):
            cluster = homogeneous_cluster(4, Resources.of(8, 16))
            job = make_chain_job(1, 2, theta=10.0, sigma=5.0)
            engine = SimulationEngine(
                cluster,
                DollyMPScheduler(max_clones=cap, delta=1.0),
                [job],
                max_time=1e5,
            )
            engine.run()
            assert all(len(t.copies) <= cap + 1 for t in job.phases[0].tasks)

    def test_delta_budget_limits_clone_resources(self):
        """δ = 0 blocks all cloning even with idle resources."""
        cluster = homogeneous_cluster(2, Resources.of(8, 16))
        job = make_chain_job(1, 2, theta=10.0, sigma=5.0)
        engine = SimulationEngine(
            cluster, DollyMPScheduler(max_clones=2, delta=0.0), [job], max_time=1e5
        )
        engine.run()
        assert engine.clones_launched == 0

    def test_small_jobs_cloned_first(self):
        """Clone priority follows scheduling priority: the small job's
        task gets the leftover clone slot, not the big job's."""
        # 5 slots: 1 small task + 3 big tasks leave exactly one leftover
        # slot — the clone pass must give it to the small job first.
        cluster = homogeneous_cluster(1, Resources.of(5, 10))
        small = make_single_task_job(theta=5.0, sigma=2.0, cpu=1.0, mem=2.0, job_id=1)
        big = make_chain_job(1, 3, theta=50.0, sigma=20.0, cpu=1.0, mem=2.0, job_id=2)
        engine = SimulationEngine(
            cluster,
            DollyMPScheduler(max_clones=2, delta=1.0),
            [small, big],
            seed=2,
            max_time=1e6,
        )
        engine.run()
        small_task = small.phases[0].tasks[0]
        assert any(c.is_clone for c in small_task.copies)

    def test_cloning_improves_stochastic_running_time(self):
        """DollyMP² beats DollyMP⁰ on running time with heavy stragglers."""

        def make_jobs():
            return [
                make_chain_job(1, 8, theta=10.0, sigma=8.0, job_id=k, arrival_time=40.0 * k)
                for k in range(10)
            ]

        def run_with(clones):
            return run_simulation(
                homogeneous_cluster(4, Resources.of(8, 16)),
                DollyMPScheduler(max_clones=clones),
                make_jobs(),
                seed=11,
                max_time=1e6,
            )

        no_clone = run_with(0)
        two_clones = run_with(2)
        assert two_clones.mean_running_time < no_clone.mean_running_time


class TestDAGJobs:
    def test_multi_phase_job_completes(self):
        cluster = homogeneous_cluster(2, Resources.of(8, 16))
        job = make_chain_job(3, 4, theta=5.0, sigma=2.0)
        res = run_simulation(
            cluster, DollyMPScheduler(max_clones=2), [job], max_time=1e5
        )
        assert res.num_jobs == 1
        assert job.is_finished

    def test_category_target_mode_runs(self):
        cluster = homogeneous_cluster(2, Resources.of(8, 16))
        jobs = [make_chain_job(2, 3, theta=5.0, sigma=2.0, job_id=k) for k in range(3)]
        res = run_simulation(
            cluster,
            DollyMPScheduler(max_clones=2, use_category_target=True),
            jobs,
            max_time=1e5,
        )
        assert res.num_jobs == 3


class _StubView:
    """Minimal stand-in exposing what recompute_priorities reads."""

    def __init__(self, cluster, jobs):
        self.cluster = cluster
        self.active_jobs = jobs


class TestPriorityCache:
    """The JobMeasure cache must be invalidated exactly when a job's
    remaining volume changes (task/job finish) and never go stale."""

    def make_setup(self):
        cluster = homogeneous_cluster(4, Resources.of(8, 16))
        jobs = [
            make_chain_job(2, 4, theta=10.0, job_id=1),
            make_chain_job(1, 2, theta=3.0, job_id=2),
        ]
        return cluster, jobs, _StubView(cluster, jobs)

    def test_measures_cached_across_recomputes(self):
        _, jobs, view = self.make_setup()
        sched = DollyMPScheduler()
        sched.recompute_priorities(view)
        first = dict(sched._measures)
        assert set(first) == {1, 2}
        sched.recompute_priorities(view)
        # Cache hit: the very same JobMeasure objects, not re-measured.
        assert sched._measures[1] is first[1]
        assert sched._measures[2] is first[2]

    def test_task_finish_invalidates_only_that_job(self):
        _, jobs, view = self.make_setup()
        sched = DollyMPScheduler()
        sched.recompute_priorities(view)
        before = dict(sched._measures)
        task = jobs[0].phases[0].tasks[0]
        task.complete(5.0)
        sched.on_task_finish(task, view)
        assert 1 not in sched._measures
        sched.recompute_priorities(view)
        assert sched._measures[1] is not before[1]  # re-measured
        assert sched._measures[2] is before[2]      # untouched

    def test_cached_priorities_match_fresh_scheduler(self):
        _, jobs, view = self.make_setup()
        warm = DollyMPScheduler()
        warm.recompute_priorities(view)
        # Mutate job state the way the engine does, with hook calls.
        for task in jobs[0].phases[0].tasks[:2]:
            task.complete(4.0)
            warm.on_task_finish(task, view)
        warm.recompute_priorities(view)
        cold = DollyMPScheduler()
        cold.recompute_priorities(view)
        assert warm._priorities == cold._priorities

    def test_job_finish_drops_measure_and_priority(self):
        _, jobs, view = self.make_setup()
        sched = DollyMPScheduler()
        sched.recompute_priorities(view)
        sched.on_job_finish(jobs[1], view)
        assert 2 not in sched._measures
        assert sched.priority_of(jobs[1]) is None

    def test_new_cluster_resets_cache(self):
        _, jobs, view = self.make_setup()
        sched = DollyMPScheduler()
        sched.recompute_priorities(view)
        stale = sched._measures[1]
        bigger = homogeneous_cluster(8, Resources.of(8, 16))
        sched.recompute_priorities(_StubView(bigger, jobs))
        # Measures are relative to total capacity: all re-measured.
        assert sched._measures[1] is not stale
