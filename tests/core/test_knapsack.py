"""Unit tests for the knapsack oracle (Algorithm 1, step 6)."""

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knapsack import (
    max_count_knapsack,
    max_count_knapsack_batch,
    max_count_knapsack_exact,
)


class TestGreedy:
    def test_empty(self):
        assert max_count_knapsack([], 10.0) == []

    def test_all_fit(self):
        assert max_count_knapsack([1, 2, 3], 10.0) == [0, 1, 2]

    def test_picks_smallest(self):
        # capacity 5: items 1+3 fit; 4 alone would only give one.
        assert max_count_knapsack([4.0, 1.0, 3.0], 5.0) == [1, 2]

    def test_exact_boundary_included(self):
        assert max_count_knapsack([2.0, 3.0], 5.0) == [0, 1]

    def test_float_noise_at_boundary(self):
        weights = [0.1] * 10
        assert len(max_count_knapsack(weights, 1.0)) == 10

    def test_zero_capacity_zero_weight_items(self):
        assert max_count_knapsack([0.0, 1.0], 0.0) == [0]

    def test_nothing_fits(self):
        assert max_count_knapsack([5.0, 6.0], 4.0) == []

    def test_stable_tie_break_by_index(self):
        assert max_count_knapsack([2.0, 2.0, 2.0], 4.0) == [0, 1]

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            max_count_knapsack([-1.0], 1.0)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            max_count_knapsack([1.0], -1.0)


class TestExactDP:
    def test_matches_greedy_on_unit_profits(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = int(rng.integers(1, 12))
            w = rng.uniform(0.1, 5.0, size=n).tolist()
            cap = float(rng.uniform(0.5, 10.0))
            greedy = max_count_knapsack(w, cap)
            exact = max_count_knapsack_exact(w, cap)
            assert len(greedy) == len(exact)
            assert sum(w[i] for i in exact) <= cap * (1 + 1e-9)

    def test_weighted_profits(self):
        # cap 5: item0 (w=5, p=3) beats items 1+2 (w=2+3, p=1+1).
        got = max_count_knapsack_exact([5.0, 2.0, 3.0], 5.0, profits=[3, 1, 1])
        assert got == [0]

    def test_weighted_prefers_combination(self):
        got = max_count_knapsack_exact([2.0, 3.0, 5.0], 5.0, profits=[2, 2, 3])
        assert sorted(got) == [0, 1]

    def test_witness_is_feasible(self):
        rng = np.random.default_rng(1)
        for _ in range(30):
            n = int(rng.integers(1, 10))
            w = rng.uniform(0.1, 4.0, size=n).tolist()
            p = rng.integers(1, 5, size=n).tolist()
            cap = float(rng.uniform(1.0, 8.0))
            sel = max_count_knapsack_exact(w, cap, profits=p)
            assert sum(w[i] for i in sel) <= cap * (1 + 1e-9)
            assert len(set(sel)) == len(sel)

    def test_witness_achieves_optimum_bruteforce(self):
        rng = np.random.default_rng(2)
        for _ in range(25):
            n = int(rng.integers(1, 9))
            w = rng.uniform(0.1, 4.0, size=n).tolist()
            p = rng.integers(1, 4, size=n).tolist()
            cap = float(rng.uniform(1.0, 6.0))
            sel = max_count_knapsack_exact(w, cap, profits=p)
            got = sum(p[i] for i in sel)
            best = 0
            for mask in range(1 << n):
                wt = sum(w[i] for i in range(n) if mask >> i & 1)
                if wt <= cap:
                    best = max(best, sum(p[i] for i in range(n) if mask >> i & 1))
            assert got == best

    def test_profit_length_mismatch(self):
        with pytest.raises(ValueError):
            max_count_knapsack_exact([1.0], 1.0, profits=[1, 2])


class TestBatchOracle:
    """max_count_knapsack_batch == one scalar call per capacity (the
    vectorized doubling-category pass rides on this equivalence)."""

    weights_st = st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
        max_size=30,
    )
    caps_st = st.lists(
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=6,
    )

    @given(weights_st, caps_st)
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_per_capacity(self, weights, caps):
        batch = max_count_knapsack_batch(weights, caps)
        assert len(batch) == len(caps)
        for cap, sel in zip(caps, batch):
            assert [int(i) for i in sel] == max_count_knapsack(weights, cap)

    @given(weights_st, st.data())
    @settings(max_examples=200, deadline=None)
    def test_eligibility_matches_filtered_scalar(self, weights, data):
        """Per-instance masks == compact-then-solve-then-map-back, the
        exact shape of the scalar per-level loop in compute_priorities."""
        n = len(weights)
        caps = data.draw(self.caps_st)
        masks = [
            np.asarray(
                data.draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
            )
            for _ in caps
        ]
        batch = max_count_knapsack_batch(weights, caps, eligible=masks)
        for cap, mask, sel in zip(caps, masks, batch):
            idx = np.flatnonzero(mask)
            chosen = max_count_knapsack([weights[i] for i in idx], cap)
            assert [int(i) for i in sel] == sorted(int(idx[j]) for j in chosen)

    def test_eligible_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            max_count_knapsack_batch([1.0], [2.0, 3.0], eligible=[np.array([True])])

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            max_count_knapsack_batch([1.0], [-1.0])
