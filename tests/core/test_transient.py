"""Unit tests for Algorithm 1 (transient priority computation)."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transient import (
    _compute_priorities_scalar,
    _compute_priorities_vectorized,
    compute_priorities,
    num_levels,
    priority_groups,
)
from repro.core.volume import JobMeasure


def m(job_id, volume, length, share=0.1):
    return JobMeasure(
        job_id=job_id, volume=volume, length=length, max_dominant_share=share
    )


class TestNumLevels:
    def test_empty(self):
        assert num_levels([]) == 0

    def test_covers_total_volume(self):
        measures = [m(i, 10.0, 5.0) for i in range(10)]  # Σv = 100
        g = num_levels(measures)
        assert 2.0**g >= 100.0

    def test_covers_max_length(self):
        measures = [m(0, 1.0, 500.0)]
        assert 2.0 ** num_levels(measures) >= 500.0

    def test_full_cluster_job_clamped(self):
        # max dominant share 1.0 must not divide by zero.
        measures = [m(0, 1.0, 1.0, share=1.0)]
        assert num_levels(measures) >= 1


class TestComputePriorities:
    def test_empty(self):
        assert compute_priorities([]) == {}

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            compute_priorities([m(1, 1.0, 1.0), m(1, 2.0, 2.0)])

    def test_every_job_gets_finite_priority(self):
        measures = [m(i, float(i + 1), float(2 * i + 1)) for i in range(20)]
        prios = compute_priorities(measures)
        assert set(prios) == set(range(20))
        assert all(isinstance(p, int) and p >= 1 for p in prios.values())

    def test_short_small_jobs_first(self):
        """A tiny short job must outrank a huge long one."""
        prios = compute_priorities([m(0, 0.5, 1.0), m(1, 100.0, 200.0)])
        assert prios[0] < prios[1]

    def test_srpt_component_length_gates_category(self):
        """Equal volumes: the shorter job enters a category earlier."""
        prios = compute_priorities([m(0, 1.0, 2.0), m(1, 1.0, 64.0)])
        assert prios[0] < prios[1]

    def test_svf_component_volume_gates_packing(self):
        """Equal lengths, capacity-limited: small volumes packed first."""
        # At level 1 (cap 2): lengths 2 are eligible; volumes 1.5 and 30 —
        # only the small one packs.
        prios = compute_priorities([m(0, 1.5, 2.0), m(1, 30.0, 2.0)])
        assert prios[0] < prios[1]

    def test_equal_jobs_same_level(self):
        measures = [m(i, 0.1, 1.0) for i in range(5)]
        prios = compute_priorities(measures)
        assert len(set(prios.values())) == 1

    def test_knapsack_packs_within_category(self):
        """Within a category the oracle maximizes the packed count."""
        # Level 2 (cap 4), all lengths ≤ 4: volumes 1,1,1,1 pack at l=2;
        # the 3.5-volume job has to wait for a later level.
        measures = [m(i, 1.0, 4.0) for i in range(4)] + [m(9, 3.5, 4.0)]
        prios = compute_priorities(measures)
        small_levels = {prios[i] for i in range(4)}
        assert small_levels == {2}
        assert prios[9] > 2

    def test_deterministic(self):
        measures = [m(i, float(i % 3 + 1), float(i % 5 + 1)) for i in range(15)]
        assert compute_priorities(measures) == compute_priorities(measures)

    def test_paper_example_fig2(self):
        """The Fig. 2 instance: DollyMP schedules Jobs 2, 3 before Job 1.

        Job 1: full-capacity demand, 36 s; Jobs 2, 3: half demand, 8 s.
        (Volumes: 36, 4, 4 — lengths 36, 8, 8.)
        """
        measures = [
            m(1, 36.0, 36.0, share=1.0),
            m(2, 4.0, 8.0, share=0.5),
            m(3, 4.0, 8.0, share=0.5),
        ]
        prios = compute_priorities(measures)
        assert prios[2] == prios[3] < prios[1]


class TestPriorityGroups:
    def test_groups_sorted(self):
        groups = priority_groups({1: 2, 2: 1, 3: 2, 4: 5})
        assert groups == [(1, [2]), (2, [1, 3]), (5, [4])]

    def test_empty(self):
        assert priority_groups({}) == []


class TestDoublingCategoryBoundaries:
    """Pins of the 2^l category edges (ISSUE audit): eligibility at
    level l is length ≤ 2^l *inclusive*, and likewise the knapsack's
    volume capacity — a job sitting exactly on a power of two belongs to
    that category, not the next one."""

    def test_length_exactly_at_power_of_two_inclusive(self):
        # length == 2^1: eligible at level 1.
        assert compute_priorities([m(0, 1.0, 2.0)])[0] == 1

    def test_length_just_above_boundary_next_level(self):
        assert compute_priorities([m(0, 1.0, 2.0 + 1e-9)])[0] == 2

    def test_length_exactly_four_enters_level_two(self):
        assert compute_priorities([m(0, 1.0, 4.0)])[0] == 2

    def test_volume_exactly_at_capacity_inclusive(self):
        # volume == 2^1: the level-1 knapsack (capacity 2) packs it.
        assert compute_priorities([m(0, 2.0, 1.0)])[0] == 1

    def test_volume_just_above_capacity_next_level(self):
        assert compute_priorities([m(0, 2.0 + 1e-9, 1.0)])[0] == 2

    def test_sub_clamp_tiny_jobs_land_on_level_one(self):
        # Categories start at 2^1 — there is no level 0, so arbitrarily
        # short/small jobs clamp to priority 1.
        assert compute_priorities([m(0, 1e-6, 1e-6)])[0] == 1
        assert num_levels([m(0, 1e-6, 1e-6)]) >= 1

    def test_boundary_pair_splits_across_levels(self):
        # Two equal-volume jobs straddling the 2^1 edge: the on-boundary
        # job outranks the just-over one.
        prios = compute_priorities([m(0, 0.5, 2.0), m(1, 0.5, 2.0 + 1e-9)])
        assert prios[0] == 1
        assert prios[1] == 2


class TestVectorizedEquivalence:
    """The vectorized doubling-category pass == the scalar reference
    loop, exactly, over arbitrary measure sets."""

    measures_st = st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
            st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
        ),
        min_size=1,
        max_size=40,
    )

    @given(measures_st)
    @settings(max_examples=200, deadline=None)
    def test_vectorized_matches_scalar(self, triples):
        measures = [
            m(i, volume, length, share)
            for i, (volume, length, share) in enumerate(triples)
        ]
        ids = [meas.job_id for meas in measures]
        assert _compute_priorities_vectorized(measures, ids) == (
            _compute_priorities_scalar(measures)
        )

    def test_env_hatch_selects_scalar(self, monkeypatch):
        """REPRO_SCALAR_PRIORITIES flips the dispatcher (and the two
        paths agree on the dispatched result)."""
        measures = [m(0, 3.0, 2.0), m(1, 1.0, 1.0), m(2, 50.0, 40.0)]
        monkeypatch.setenv("REPRO_SCALAR_PRIORITIES", "1")
        scalar = compute_priorities(measures)
        monkeypatch.delenv("REPRO_SCALAR_PRIORITIES")
        assert compute_priorities(measures) == scalar
