"""Unit tests for the volume / effective-length measures (Eqs. 9–17)."""

import pytest

from repro.core.volume import (
    JobMeasure,
    dominant_share,
    job_effective_length,
    job_volume,
    measure_job,
    measure_single_task_job,
    phase_dominant_share,
)
from repro.resources import Resources
from repro.workload.distributions import Deterministic
from repro.workload.job import Job
from repro.workload.phase import Phase
from tests.conftest import make_chain_job
from tests.workload.test_job import finish_phase

TOTAL = Resources.of(100, 200)


class TestDominantShare:
    def test_eq9(self):
        assert dominant_share(Resources.of(10, 10), TOTAL) == pytest.approx(0.1)
        assert dominant_share(Resources.of(1, 100), TOTAL) == pytest.approx(0.5)

    def test_phase_variant(self):
        p = Phase(0, 1, Resources.of(20, 20), Deterministic(1.0))
        Job([p])
        assert phase_dominant_share(p, TOTAL) == pytest.approx(0.2)


class TestJobVolume:
    def test_single_phase_eq14(self):
        # v = n · e · d = 4 · 10 · 0.1
        job = make_chain_job(1, 4, cpu=10.0, mem=10.0, theta=10.0)
        assert job_volume(job, TOTAL, r=1.5) == pytest.approx(4.0)

    def test_multi_phase_sums(self):
        job = make_chain_job(2, 3, cpu=10.0, mem=10.0, theta=10.0)
        assert job_volume(job, TOTAL, r=0.0) == pytest.approx(2 * 3 * 10 * 0.1)

    def test_remaining_only_eq16(self):
        job = make_chain_job(2, 3, cpu=10.0, mem=10.0, theta=10.0)
        finish_phase(job.phases[0])
        v_rem = job_volume(job, TOTAL, r=0.0, remaining_only=True)
        v_all = job_volume(job, TOTAL, r=0.0, remaining_only=False)
        assert v_rem == pytest.approx(v_all / 2)

    def test_partial_phase_counts_unfinished_tasks(self):
        job = make_chain_job(1, 4, cpu=10.0, mem=10.0, theta=10.0)
        job.phases[0].tasks[0].complete(1.0)
        assert job_volume(job, TOTAL, r=0.0) == pytest.approx(3 * 10 * 0.1)

    def test_deviation_weight_increases_volume(self):
        job = make_chain_job(1, 2, cpu=10.0, mem=10.0, theta=10.0, sigma=4.0)
        assert job_volume(job, TOTAL, r=1.5) > job_volume(job, TOTAL, r=0.0)


class TestEffectiveLength:
    def test_chain_eq17(self):
        job = make_chain_job(3, 2, theta=10.0)
        assert job_effective_length(job, r=0.0) == pytest.approx(30.0)
        finish_phase(job.phases[0])
        assert job_effective_length(job, r=0.0) == pytest.approx(20.0)

    def test_full_length_option(self):
        job = make_chain_job(3, 2, theta=10.0)
        finish_phase(job.phases[0])
        assert (
            job_effective_length(job, r=0.0, remaining_only=False)
            == pytest.approx(30.0)
        )


class TestMeasures:
    def test_measure_job_fields(self):
        job = make_chain_job(2, 3, cpu=10.0, mem=10.0, theta=10.0, job_id=9)
        m = measure_job(job, TOTAL, r=0.0)
        assert m.job_id == 9
        assert m.volume == pytest.approx(6.0)
        assert m.length == pytest.approx(20.0)
        assert m.max_dominant_share == pytest.approx(0.1)

    def test_measure_single_task_eq10(self):
        m = measure_single_task_job(1, Resources.of(10, 10), 7.0, TOTAL)
        assert m.volume == pytest.approx(0.7)  # d·θ
        assert m.length == pytest.approx(7.0)

    def test_negative_measure_rejected(self):
        with pytest.raises(ValueError):
            JobMeasure(job_id=0, volume=-1.0, length=1.0, max_dominant_share=0.1)

    def test_finished_phase_excluded_from_max_share(self):
        # Phase 0 has the big demand; once finished, max share drops.
        phases = [
            Phase(0, 1, Resources.of(50, 50), Deterministic(1.0)),
            Phase(1, 1, Resources.of(10, 10), Deterministic(1.0), parents=(0,)),
        ]
        job = Job(phases)
        finish_phase(job.phases[0])
        m = measure_job(job, TOTAL, r=0.0)
        assert m.max_dominant_share == pytest.approx(0.1)
