"""Tests for the straggler-server learning extension (future work of the
paper, implemented in repro.core.server_learning)."""

import math

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.server import Server
from repro.core.server_learning import LearningDollyMPScheduler, StragglerServerTracker
from repro.core.online import DollyMPScheduler
from repro.resources import Resources
from repro.sim.runner import run_simulation
from repro.workload.distributions import ParetoType1
from repro.workload.job import Job
from repro.workload.phase import Phase
from repro.workload.task import TaskCopy
from tests.conftest import make_chain_job


class TestTracker:
    def test_validation(self):
        with pytest.raises(ValueError):
            StragglerServerTracker(alpha=0.0)
        with pytest.raises(ValueError):
            StragglerServerTracker(min_samples=0)
        with pytest.raises(ValueError):
            StragglerServerTracker().observe(0, -1.0, 1.0)

    def test_defaults_to_nominal_until_confident(self):
        t = StragglerServerTracker(min_samples=5)
        for _ in range(4):
            t.observe(0, 30.0, 10.0)  # clearly slow, but few samples
        assert t.estimated_slowdown(0) == 1.0
        t.observe(0, 30.0, 10.0)
        assert t.estimated_slowdown(0) > 1.0

    def test_converges_to_constant_slowdown(self):
        t = StragglerServerTracker(alpha=0.2, min_samples=1)
        for _ in range(200):
            t.observe(3, 20.0, 10.0)  # steady 2× slowdown
        assert t.estimated_slowdown(3) == pytest.approx(2.0, rel=0.01)

    def test_tracks_drift(self):
        t = StragglerServerTracker(alpha=0.3, min_samples=1)
        for _ in range(100):
            t.observe(0, 10.0, 10.0)
        assert t.estimated_slowdown(0) == pytest.approx(1.0, rel=0.05)
        for _ in range(100):
            t.observe(0, 40.0, 10.0)  # background load arrives
        assert t.estimated_slowdown(0) == pytest.approx(4.0, rel=0.05)

    def test_geometric_averaging_resists_heavy_tails(self):
        """One enormous straggler draw should not wreck the estimate."""
        t = StragglerServerTracker(alpha=0.1, min_samples=1)
        for _ in range(50):
            t.observe(0, 10.0, 10.0)
        t.observe(0, 10_000.0, 10.0)  # a 1000× outlier
        assert t.estimated_slowdown(0) < 2.5

    def test_risky_servers(self):
        t = StragglerServerTracker(alpha=1.0, min_samples=1)
        t.observe(0, 10.0, 10.0)
        t.observe(1, 30.0, 10.0)
        t.observe(2, 9.0, 10.0)
        assert t.risky_servers(threshold=1.5) == [1]

    def test_observe_task_duration_signal_from_winner_only(self):
        phase = Phase(0, 1, Resources.of(1, 1), ParetoType1.from_moments(10, 5))
        Job([phase])
        task = phase.tasks[0]
        winner = TaskCopy(task, 0, 0.0, 12.0, is_clone=False)
        loser = TaskCopy(task, 1, 0.0, 100.0, is_clone=True)
        task.add_copy(winner)
        task.add_copy(loser)
        winner.finished = True
        loser.killed = True
        loser.duration = 12.0  # truncated at kill
        t = StragglerServerTracker(min_samples=1)
        t.observe_task(task)
        assert t.samples(0) == 1
        assert t.samples(1) == 0  # censored duration ignored
        # ... but both copies feed the win-rate signal.
        assert t.contested(0) == 1 and t.contested(1) == 1

    def test_win_rate_deficit_flags_censored_slow_server(self):
        """A server that always loses its races is flagged even though
        its durations are never (uncensored-)observed — the selection-
        bias case that pure duration tracking misses."""
        t = StragglerServerTracker(min_samples=5)
        phase = Phase(0, 40, Resources.of(1, 1), ParetoType1.from_moments(10, 5))
        Job([phase])
        for i, task in enumerate(phase.tasks):
            winner = TaskCopy(task, 1, 0.0, 10.0, is_clone=False)
            loser = TaskCopy(task, 0, 0.0, 40.0, is_clone=True)  # always loses
            task.add_copy(winner)
            task.add_copy(loser)
            winner.finished = True
            loser.killed = True
            loser.duration = 10.0
            t.observe_task(task)
        assert t.win_rate_factor(0) > 2.0      # expected 20 wins, saw 0
        assert t.estimated_slowdown(0) > 1.5   # flagged
        assert t.estimated_slowdown(1) <= 1.5  # the fast server is fine
        assert t.risky_servers(1.5) == [0]

    def test_balanced_races_keep_factor_near_one(self):
        t = StragglerServerTracker(min_samples=5)
        phase = Phase(0, 40, Resources.of(1, 1), ParetoType1.from_moments(10, 5))
        Job([phase])
        for i, task in enumerate(phase.tasks):
            a = TaskCopy(task, 0, 0.0, 10.0, is_clone=False)
            b = TaskCopy(task, 1, 0.0, 10.0, is_clone=True)
            task.add_copy(a)
            task.add_copy(b)
            winner, loser = (a, b) if i % 2 == 0 else (b, a)
            winner.finished = True
            loser.killed = True
            t.observe_task(task)
        assert t.win_rate_factor(0) < 1.2
        assert t.win_rate_factor(1) < 1.2


class TestLearningScheduler:
    def test_name_and_validation(self):
        s = LearningDollyMPScheduler(max_clones=1)
        assert s.name == "LearningDollyMP^1"
        with pytest.raises(ValueError):
            LearningDollyMPScheduler(bias=-1.0)

    def test_weight_prefers_fast_servers(self):
        s = LearningDollyMPScheduler(bias=1.0)
        s.tracker = StragglerServerTracker(alpha=1.0, min_samples=1)
        s.tracker.observe(0, 40.0, 10.0)  # 4× slow
        s.tracker.observe(1, 10.0, 10.0)  # nominal
        slow = Server(0, Resources.of(8, 8))
        fast = Server(1, Resources.of(8, 8))
        assert s.server_weight(fast) > s.server_weight(slow)

    def test_avoids_learned_slow_server(self):
        """On a cluster with one pathologically slow node, the learning
        scheduler shifts work away and beats plain DollyMP⁰."""

        def make_cluster():
            servers = [
                Server(0, Resources.of(4, 8), slowdown=8.0),  # the bad node
                Server(1, Resources.of(4, 8), slowdown=1.0),
                Server(2, Resources.of(4, 8), slowdown=1.0),
            ]
            return Cluster(servers)

        def make_jobs():
            return [
                make_chain_job(
                    1, 6, theta=10.0, sigma=3.0, arrival_time=30.0 * k, job_id=k
                )
                for k in range(25)
            ]

        plain = run_simulation(
            make_cluster(),
            DollyMPScheduler(max_clones=0),
            make_jobs(),
            seed=3,
            max_time=1e6,
        )
        learned = run_simulation(
            make_cluster(),
            LearningDollyMPScheduler(max_clones=0, bias=2.0),
            make_jobs(),
            seed=3,
            max_time=1e6,
        )
        assert learned.mean_running_time < plain.mean_running_time

    def test_bias_zero_matches_plain_dollymp(self):
        def make_cluster():
            return Cluster([Server(0, Resources.of(8, 16)), Server(1, Resources.of(8, 16))])

        def make_jobs():
            return [make_chain_job(2, 4, theta=5.0, sigma=2.0, job_id=k) for k in range(5)]

        a = run_simulation(
            make_cluster(), DollyMPScheduler(max_clones=2), make_jobs(), seed=9,
            max_time=1e6,
        )
        b = run_simulation(
            make_cluster(),
            LearningDollyMPScheduler(max_clones=2, bias=0.0),
            make_jobs(),
            seed=9,
            max_time=1e6,
        )
        assert a.total_flowtime == pytest.approx(b.total_flowtime)
