"""Unit tests for the Resources vector type."""

import math

import pytest

from repro.resources import Resources, ZERO, sum_resources


class TestConstruction:
    def test_default_is_zero(self):
        assert Resources() == ZERO

    def test_of_coerces_to_float(self):
        r = Resources.of(4, 8)
        assert isinstance(r.cpu, float) and isinstance(r.mem, float)
        assert r.cpu == 4.0 and r.mem == 8.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Resources(float("nan"), 1.0)

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            Resources(1.0, math.inf)

    def test_frozen(self):
        r = Resources.of(1, 1)
        with pytest.raises(AttributeError):
            r.cpu = 2.0  # type: ignore[misc]

    def test_hashable_and_equal(self):
        assert Resources.of(1, 2) == Resources.of(1, 2)
        assert hash(Resources.of(1, 2)) == hash(Resources.of(1, 2))


class TestArithmetic:
    def test_add(self):
        assert Resources.of(1, 2) + Resources.of(3, 4) == Resources.of(4, 6)

    def test_sub(self):
        assert Resources.of(3, 4) - Resources.of(1, 2) == Resources.of(2, 2)

    def test_mul_scalar_both_sides(self):
        assert Resources.of(1, 2) * 3 == Resources.of(3, 6)
        assert 3 * Resources.of(1, 2) == Resources.of(3, 6)

    def test_div(self):
        assert Resources.of(4, 8) / 2 == Resources.of(2, 4)

    def test_neg(self):
        assert -Resources.of(1, -2) == Resources.of(-1, 2)

    def test_iter_unpacks(self):
        cpu, mem = Resources.of(5, 7)
        assert (cpu, mem) == (5.0, 7.0)


class TestPacking:
    def test_fits_in_exact(self):
        assert Resources.of(8, 16).fits_in(Resources.of(8, 16))

    def test_fits_in_strict(self):
        assert Resources.of(4, 8).fits_in(Resources.of(8, 16))

    def test_does_not_fit_cpu(self):
        assert not Resources.of(9, 8).fits_in(Resources.of(8, 16))

    def test_does_not_fit_mem(self):
        assert not Resources.of(4, 17).fits_in(Resources.of(8, 16))

    def test_fits_tolerates_float_noise(self):
        # Sum of ten 0.1s is slightly above 1.0 in binary floating point.
        acc = ZERO
        for _ in range(10):
            acc = acc + Resources.of(0.1, 0.1)
        assert acc.fits_in(Resources.of(1.0, 1.0))

    def test_clamp_nonnegative(self):
        r = Resources.of(-1e-15, 2.0).clamp_nonnegative()
        assert r.cpu == 0.0 and r.mem == 2.0

    def test_is_zero(self):
        assert ZERO.is_zero()
        assert not Resources.of(0.1, 0).is_zero()


class TestScores:
    def test_dot(self):
        assert Resources.of(1, 2).dot(Resources.of(3, 4)) == 11.0

    def test_dominant_share_cpu_dominates(self):
        d = Resources.of(8, 8).dominant_share(Resources.of(16, 64))
        assert d == pytest.approx(0.5)

    def test_dominant_share_mem_dominates(self):
        d = Resources.of(1, 32).dominant_share(Resources.of(16, 64))
        assert d == pytest.approx(0.5)

    def test_dominant_share_zero_total_dimension_ignored(self):
        d = Resources.of(2, 5).dominant_share(Resources.of(4, 0))
        assert d == pytest.approx(0.5)

    def test_dominant_share_empty_cluster_raises(self):
        with pytest.raises(ValueError):
            Resources.of(1, 1).dominant_share(ZERO)

    def test_normalized_by(self):
        n = Resources.of(8, 32).normalized_by(Resources.of(16, 64))
        assert n == Resources.of(0.5, 0.5)

    def test_max_component(self):
        assert Resources.of(3, 7).max_component() == 7.0


class TestSum:
    def test_sum_empty(self):
        assert sum_resources([]) == ZERO

    def test_sum_many(self):
        rs = [Resources.of(i, 2 * i) for i in range(5)]
        assert sum_resources(rs) == Resources.of(10, 20)
