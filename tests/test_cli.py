"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    SCHEDULER_FACTORIES,
    main,
    make_app_jobs,
    make_cluster,
    make_scheduler,
)


class TestFactories:
    def test_every_scheduler_name_constructs(self):
        for name in SCHEDULER_FACTORIES:
            sched = make_scheduler(name)
            assert hasattr(sched, "schedule")

    def test_unknown_scheduler_exits(self):
        with pytest.raises(SystemExit):
            make_scheduler("nonsense")

    def test_cluster_specs(self):
        assert len(make_cluster("paper", 0)) == 30
        assert len(make_cluster("trace:50", 0)) == 50
        c = make_cluster("uniform:4x8x16", 0)
        assert len(c) == 4 and c[0].capacity.cpu == 8

    def test_bad_cluster_exits(self):
        with pytest.raises(SystemExit):
            make_cluster("weird", 0)

    def test_app_jobs(self):
        jobs = make_app_jobs("mixed", 4, 10.0, 2.0)
        assert len(jobs) == 4
        assert jobs[1].arrival_time == 10.0
        with pytest.raises(SystemExit):
            make_app_jobs("tensorflow", 1, 1.0, 1.0)


class TestCommands:
    def test_run(self, capsys):
        rc = main(
            ["run", "--scheduler", "dollymp2", "--app", "wordcount",
             "--jobs", "3", "--gap", "100", "--input-gb", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "total_flowtime" in out

    def test_compare(self, capsys):
        rc = main(
            ["compare", "--schedulers", "fifo,srpt", "--app", "wordcount",
             "--jobs", "3", "--gap", "50", "--input-gb", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fifo" in out and "srpt" in out

    def test_trace_and_replay(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(["trace", "--jobs", "10", "--out", str(trace)]) == 0
        assert trace.exists()
        rc = main(
            ["replay", str(trace), "--scheduler", "tetris",
             "--cluster", "trace:40", "--slot", "5"]
        )
        assert rc == 0
        assert "makespan" in capsys.readouterr().out

    def test_slotted_run(self, capsys):
        rc = main(
            ["run", "--scheduler", "capacity", "--app", "pagerank",
             "--jobs", "2", "--gap", "100", "--input-gb", "0.5", "--slot", "5"]
        )
        assert rc == 0
