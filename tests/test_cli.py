"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    SCHEDULER_FACTORIES,
    main,
    make_app_jobs,
    make_cluster,
    make_scheduler,
)


class TestFactories:
    def test_every_scheduler_name_constructs(self):
        for name in SCHEDULER_FACTORIES:
            sched = make_scheduler(name)
            assert hasattr(sched, "schedule")

    def test_unknown_scheduler_exits(self):
        with pytest.raises(SystemExit):
            make_scheduler("nonsense")

    def test_cluster_specs(self):
        assert len(make_cluster("paper", 0)) == 30
        assert len(make_cluster("trace:50", 0)) == 50
        c = make_cluster("uniform:4x8x16", 0)
        assert len(c) == 4 and c[0].capacity.cpu == 8

    def test_bad_cluster_exits(self):
        with pytest.raises(SystemExit):
            make_cluster("weird", 0)

    def test_app_jobs(self):
        jobs = make_app_jobs("mixed", 4, 10.0, 2.0)
        assert len(jobs) == 4
        assert jobs[1].arrival_time == 10.0
        with pytest.raises(SystemExit):
            make_app_jobs("tensorflow", 1, 1.0, 1.0)


class TestCommands:
    def test_run(self, capsys):
        rc = main(
            ["run", "--scheduler", "dollymp2", "--app", "wordcount",
             "--jobs", "3", "--gap", "100", "--input-gb", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "total_flowtime" in out

    def test_compare(self, capsys):
        rc = main(
            ["compare", "--schedulers", "fifo,srpt", "--app", "wordcount",
             "--jobs", "3", "--gap", "50", "--input-gb", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fifo" in out and "srpt" in out

    def test_trace_and_replay(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(["trace", "--jobs", "10", "--out", str(trace)]) == 0
        assert trace.exists()
        rc = main(
            ["replay", str(trace), "--scheduler", "tetris",
             "--cluster", "trace:40", "--slot", "5"]
        )
        assert rc == 0
        assert "makespan" in capsys.readouterr().out

    def test_slotted_run(self, capsys):
        rc = main(
            ["run", "--scheduler", "capacity", "--app", "pagerank",
             "--jobs", "2", "--gap", "100", "--input-gb", "0.5", "--slot", "5"]
        )
        assert rc == 0

    def test_trace_without_out_exits(self):
        with pytest.raises(SystemExit, match="--out"):
            main(["trace", "--jobs", "5"])


class TestDecisionTraceCommands:
    def _record(self, path, *extra):
        return main(
            ["trace", "record", "--scheduler", "dollymp2", "--app", "mixed",
             "--jobs", "4", "--gap", "30", "--input-gb", "1",
             "--cluster", "uniform:4x8x16", "--out", str(path), *extra]
        )

    def test_record_then_replay_bit_identical(self, tmp_path, capsys):
        trace = tmp_path / "decisions.jsonl"
        assert self._record(trace) == 0
        out = capsys.readouterr().out
        assert "recorded" in out and str(trace) in out
        assert trace.exists()

        assert main(["trace", "replay", str(trace)]) == 0
        assert "bit-identical to the recorded run" in capsys.readouterr().out

    def test_replay_detects_tampering(self, tmp_path, capsys):
        trace = tmp_path / "decisions.jsonl"
        assert self._record(trace) == 0
        capsys.readouterr()
        # Corrupt the expected flow times in the header: the replayed
        # run no longer matches, so the oracle must report divergence.
        lines = trace.read_text().splitlines()
        import json

        header = json.loads(lines[0])
        header["meta"]["expected"]["flowtimes"][0][1] += 1.0
        lines[0] = json.dumps(header, sort_keys=True)
        trace.write_text("\n".join(lines) + "\n")

        assert main(["trace", "replay", str(trace)]) == 1
        captured = capsys.readouterr()
        assert "DIVERGED" in captured.err

    def test_replay_requires_provenance(self, tmp_path):
        from repro.sim.actions import DecisionTrace

        bare = tmp_path / "bare.jsonl"
        DecisionTrace(meta={"seed": 0}).dump_jsonl(bare)
        with pytest.raises(SystemExit, match="provenance"):
            main(["trace", "replay", str(bare)])


class TestFaultFlags:
    def test_run_with_fault_profile(self, capsys):
        rc = main(
            ["run", "--scheduler", "dollymp2", "--app", "wordcount",
             "--jobs", "3", "--gap", "40", "--seed", "3",
             "--fault-profile", "churn", "--mtbf", "150", "--mttr", "20"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults_injected" in out

    def test_run_without_faults_has_no_fault_keys(self, capsys):
        rc = main(
            ["run", "--scheduler", "dollymp2", "--app", "wordcount",
             "--jobs", "3", "--gap", "40", "--seed", "3"]
        )
        assert rc == 0
        assert "faults_injected" not in capsys.readouterr().out

    def test_unknown_profile_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--scheduler", "dollymp2", "--app", "wordcount",
                  "--jobs", "1", "--fault-profile", "meteor"])

    def test_record_then_replay_fault_run(self, tmp_path, capsys):
        path = tmp_path / "faulty.jsonl"
        rc = main(
            ["trace", "record", "--scheduler", "dollymp2", "--app", "mixed",
             "--jobs", "4", "--gap", "40", "--seed", "7",
             "--fault-profile", "churn", "--mtbf", "200",
             "--out", str(path)]
        )
        assert rc == 0
        rc = main(["trace", "replay", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out
