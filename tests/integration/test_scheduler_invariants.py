"""Invariants every scheduling policy must satisfy, checked end-to-end
on a shared stochastic workload.

The engine enforces Eq. (5) (capacity) and Eq. (7) (DAG gating) with
hard errors, so merely completing the run proves those; the assertions
here cover conservation and bookkeeping invariants.
"""

import pytest

from repro.cluster.heterogeneity import paper_cluster_30_nodes
from repro.schedulers.carbyne import CarbyneScheduler
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.fifo import CapacityScheduler, FIFOScheduler
from repro.schedulers.graphene import GrapheneScheduler
from repro.schedulers.srpt import SRPTScheduler
from repro.schedulers.svf import SVFScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.core.online import DollyMPScheduler
from repro.sim.engine import SimulationEngine
from repro.workload.google_trace import GoogleTraceGenerator, jobs_from_specs
from repro.workload.task import TaskState

ALL_SCHEDULERS = {
    "FIFO": FIFOScheduler,
    "Capacity": CapacityScheduler,
    "SRPT": SRPTScheduler,
    "SVF": SVFScheduler,
    "DRF": DRFScheduler,
    "Tetris": TetrisScheduler,
    "Carbyne": CarbyneScheduler,
    "Graphene": GrapheneScheduler,
    "DollyMP0": lambda: DollyMPScheduler(max_clones=0),
    "DollyMP2": lambda: DollyMPScheduler(max_clones=2),
}


def workload():
    gen = GoogleTraceGenerator(seed=17, mean_theta=15.0)
    specs = gen.generate(25, mean_interarrival=10.0)
    # Clamp demands to fit the paper cluster's smallest nodes.
    return jobs_from_specs(specs)


@pytest.fixture(scope="module", params=sorted(ALL_SCHEDULERS))
def engine(request):
    """One completed run per scheduler, shared by all invariant tests."""
    eng = SimulationEngine(
        paper_cluster_30_nodes(),
        ALL_SCHEDULERS[request.param](),
        workload(),
        seed=5,
        max_time=1e6,
    )
    eng.result = eng.run()
    eng.policy_name = request.param
    return eng


class TestInvariants:

    def test_all_jobs_complete(self, engine):
        assert engine.result.num_jobs == 25
        assert not engine.active_jobs

    def test_all_resources_released(self, engine):
        assert engine.cluster.total_allocated().is_zero()
        assert engine.clone_occupancy.is_zero()
        for server in engine.cluster:
            assert not server.running_copies

    def test_every_task_finished_exactly_once(self, engine):
        for job in engine.finished_jobs:
            for phase in job.phases:
                for task in phase.tasks:
                    assert task.state is TaskState.FINISHED
                    winners = [c for c in task.copies if c.finished]
                    assert len(winners) == 1
                    losers = [c for c in task.copies if c.killed]
                    assert len(losers) == len(task.copies) - 1
                    assert task.num_live_copies == 0

    def test_first_copy_wins_semantics(self, engine):
        """The winning copy's finish time equals the task finish time and
        is minimal among the task's copies' (untruncated) finish times."""
        for job in engine.finished_jobs:
            for phase in job.phases:
                for task in phase.tasks:
                    winner = next(c for c in task.copies if c.finished)
                    assert winner.finish_time == pytest.approx(task.finish_time)
                    for c in task.copies:
                        if c.killed:
                            # Killed at the winner's finish; its truncated
                            # end cannot precede its start.
                            assert c.duration > 0

    def test_flowtimes_positive_and_causal(self, engine):
        for rec in engine.result.records:
            assert rec.flowtime > 0
            assert rec.first_start_time >= rec.arrival_time - 1e-9
            assert rec.finish_time >= rec.first_start_time

    def test_phase_dependencies_respected(self, engine):
        """No task started before all parent phases finished."""
        for job in engine.finished_jobs:
            for phase in job.phases:
                earliest = min(
                    c.start_time for t in phase.tasks for c in t.copies
                )
                for p in phase.parents:
                    parent_done = job.phases[p].finish_time()
                    assert earliest >= parent_done - 1e-9

    def test_usage_accounting_consistent(self, engine):
        """Σ per-job cpu-seconds equals the engine's utilization integral."""
        total_cpu_seconds = sum(r.cpu_seconds for r in engine.result.records)
        integral = engine._alloc_integral_cpu
        assert total_cpu_seconds == pytest.approx(integral, rel=1e-6)

    def test_clone_counts_match_records(self, engine):
        assert (
            sum(r.num_clones for r in engine.result.records)
            == engine.clones_launched
        )
        assert (
            sum(r.num_copies for r in engine.result.records)
            == engine.copies_launched
        )


class TestCloneCapInvariant:
    @pytest.mark.parametrize("cap", [0, 1, 2, 3])
    def test_dollymp_copy_cap(self, cap):
        engine = SimulationEngine(
            paper_cluster_30_nodes(),
            DollyMPScheduler(max_clones=cap),
            workload(),
            seed=5,
            max_time=1e6,
        )
        engine.run()
        for job in engine.finished_jobs:
            for phase in job.phases:
                for task in phase.tasks:
                    assert len(task.copies) <= cap + 1


class TestSlottedEquivalence:
    def test_slotted_run_completes_same_jobs(self):
        ev = SimulationEngine(
            paper_cluster_30_nodes(),
            DollyMPScheduler(max_clones=2),
            workload(),
            seed=5,
            max_time=1e6,
        ).run()
        sl = SimulationEngine(
            paper_cluster_30_nodes(),
            DollyMPScheduler(max_clones=2),
            workload(),
            seed=5,
            schedule_interval=5.0,
            max_time=1e6,
        ).run()
        assert ev.num_jobs == sl.num_jobs == 25
        # Slot quantization delays starts, never loses work.
        assert sl.total_flowtime >= ev.total_flowtime * 0.5
