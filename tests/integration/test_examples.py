"""Every example script must run clean end-to-end (small arguments)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Cluster: 30 nodes, 328 cores" in out
    assert "total_flowtime" in out


def test_cloning_analysis():
    out = run_example("cloning_analysis.py")
    assert "h(2)" in out
    assert "flow3" in out
    assert "unreachable" in out


def test_scheduler_comparison_small():
    out = run_example("scheduler_comparison.py", "16")
    assert "Capacity" in out and "DollyMP^2" in out
    assert "Best:" in out


def test_straggler_learning():
    out = run_example("straggler_learning.py")
    assert "Identified straggler servers: [0, 1, 2, 3]" in out


@pytest.mark.slow
def test_trace_replay():
    out = run_example("trace_replay.py")
    assert "Trace written" in out
    assert "average speedup" in out
