"""Seeded determinism: same workload + same seed ⇒ identical results.

The seed fixes every stochastic draw (straggler realizations, clone
duration re-draws), so two independent runs over freshly-built copies of
the same workload must produce *bit-identical* per-job flow times — not
merely close ones.  RL002 exists to keep this property from regressing:
any unseeded randomness sneaking into the simulation path shows up here
as a flaky diff long before it corrupts a paper figure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.heterogeneity import homogeneous_cluster, paper_cluster_30_nodes
from repro.core.online import DollyMPScheduler
from repro.resources import Resources
from repro.schedulers.fifo import FIFOScheduler
from repro.sim.runner import run_simulation
from repro.workload.mapreduce import pagerank_job, wordcount_job
from tests.conftest import make_chain_job


def paper_workload():
    """Fresh Job objects each call — simulation mutates task state."""
    jobs = []
    for i in range(6):
        if i % 2 == 0:
            jobs.append(wordcount_job(2.0, arrival_time=30.0 * i, job_id=i))
        else:
            jobs.append(pagerank_job(1.0, arrival_time=30.0 * i, job_id=i))
    return jobs


def run_paper_workload(seed, *, max_clones=2):
    result = run_simulation(
        paper_cluster_30_nodes(),
        DollyMPScheduler(max_clones=max_clones),
        paper_workload(),
        seed=seed,
        sanitize=True,
    )
    return {r.job_id: r.flowtime for r in result.records}


class TestSeededDeterminism:
    def test_same_seed_identical_per_job_flowtimes(self):
        first = run_paper_workload(seed=42)
        second = run_paper_workload(seed=42)
        assert first.keys() == second.keys()
        for job_id in first:
            # Exact equality on purpose: determinism means the same
            # floats, not the same floats within a tolerance.
            assert first[job_id] == second[job_id], (
                f"job {job_id}: {first[job_id]!r} != {second[job_id]!r}"
            )

    def test_different_seed_changes_stochastic_durations(self):
        """Sanity check that the seed actually reaches the draws: with
        cv>0 task durations, distinct seeds give distinct flow times."""
        first = run_paper_workload(seed=1)
        second = run_paper_workload(seed=2)
        assert any(
            first[job_id] != second[job_id]
            for job_id in first
        )

    def test_event_driven_and_slotted_both_deterministic(self):
        def run(interval):
            result = run_simulation(
                homogeneous_cluster(4, Resources.of(8, 16)),
                DollyMPScheduler(max_clones=1),
                [
                    make_chain_job(
                        2, 5, theta=20.0, sigma=12.0, arrival_time=10.0 * i, job_id=i
                    )
                    for i in range(4)
                ],
                seed=7,
                schedule_interval=interval,
                sanitize=True,
            )
            return np.array(sorted(result.flowtimes()))

        for interval in (0.0, 5.0):
            a, b = run(interval), run(interval)
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("scheduler_factory", [FIFOScheduler, DollyMPScheduler])
    def test_repeatability_across_schedulers(self, scheduler_factory):
        def run():
            result = run_simulation(
                homogeneous_cluster(3, Resources.of(8, 16)),
                scheduler_factory(),
                [
                    make_chain_job(
                        1, 8, theta=15.0, sigma=8.0, arrival_time=5.0 * i, job_id=i
                    )
                    for i in range(3)
                ],
                seed=99,
                sanitize=True,
            )
            return {r.job_id: r.flowtime for r in result.records}

        assert run() == run()
