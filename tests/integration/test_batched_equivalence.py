"""Batched/lazy/vectorized engine paths vs the eager scalar reference.

The batched event-loop engine ships three escape hatches —
``REPRO_EAGER_PRIORITIES`` (per-event priority recompute instead of the
lazy copy-on-write roster), ``REPRO_SCALAR_PRIORITIES`` (per-level
knapsack loop instead of the batched doubling-category pass) and
``REPRO_SCALAR_CLONE_FILL`` (fresh best-fit query per clone instead of
the per-pass score cache).  Each hatch, and all of them together, must
be a pure performance change: identical copy-launch sequences and
bit-identical metrics, in event-driven and slotted modes, with and
without fault injection (DESIGN.md §5.6).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.heterogeneity import paper_cluster_30_nodes
from repro.core.online import DollyMPScheduler
from repro.devtools.fault_smoke import SMOKE_PROFILE
from repro.sim.runner import run_simulation
from tests.integration.test_vectorized_equivalence import (
    SEED,
    launch_log,
    mixed_dag_jobs,
)

HATCHES = (
    "REPRO_EAGER_PRIORITIES",
    "REPRO_SCALAR_PRIORITIES",
    "REPRO_SCALAR_CLONE_FILL",
)


def run_one(monkeypatch, env, *, schedule_interval=0.0, fault_profile=None):
    for key in HATCHES:
        monkeypatch.delenv(key, raising=False)
    for key in env:
        monkeypatch.setenv(key, "1")
    jobs = mixed_dag_jobs()
    result = run_simulation(
        paper_cluster_30_nodes(),
        DollyMPScheduler(max_clones=2),
        jobs,
        seed=SEED,
        schedule_interval=schedule_interval,
        max_time=1e7,
        fault_profile=fault_profile,
    )
    return result, launch_log(jobs)


def assert_equivalent(a, b):
    res_a, log_a = a
    res_b, log_b = b
    assert log_a == log_b
    assert np.array_equal(res_a.flowtimes(), res_b.flowtimes())
    assert res_a.total_flowtime == res_b.total_flowtime
    assert res_a.makespan == res_b.makespan
    assert res_a.copies_launched == res_b.copies_launched
    assert res_a.clones_launched == res_b.clones_launched
    assert res_a.avg_utilization == res_b.avg_utilization


@pytest.mark.parametrize(
    "env",
    [
        ("REPRO_EAGER_PRIORITIES",),
        ("REPRO_SCALAR_PRIORITIES",),
        ("REPRO_SCALAR_CLONE_FILL",),
        HATCHES,
    ],
    ids=["eager-priorities", "scalar-priorities", "scalar-clone-fill", "all-hatches"],
)
def test_each_hatch_is_identity(monkeypatch, env):
    assert_equivalent(run_one(monkeypatch, ()), run_one(monkeypatch, env))


def test_all_hatches_slotted(monkeypatch):
    assert_equivalent(
        run_one(monkeypatch, (), schedule_interval=5.0),
        run_one(monkeypatch, HATCHES, schedule_interval=5.0),
    )


def test_all_hatches_under_faults(monkeypatch):
    """Fault churn exercises the batched drain's same-instant ordering
    (kills, requeues, server sweeps); the hatched run must still match."""
    base = run_one(monkeypatch, (), schedule_interval=5.0, fault_profile=SMOKE_PROFILE)
    hatched = run_one(
        monkeypatch, HATCHES, schedule_interval=5.0, fault_profile=SMOKE_PROFILE
    )
    assert base[0].faults_injected > 0
    assert_equivalent(base, hatched)
