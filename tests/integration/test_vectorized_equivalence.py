"""Scalar/vectorized placement equivalence.

The vectorized placement engine (availability mirror + batched fill)
must be a pure performance change: under a fixed seed, the scalar
reference path (``Cluster(vectorized=False)`` /
``REPRO_SCALAR_PLACEMENT=1``) and the vectorized path must produce the
*identical sequence of copy launches* — same task, same server, same
time, same clone flag — and therefore bit-identical flowtimes and
result metrics.  The workload mixes DAG jobs (PageRank iterations,
WordCount map→reduce) with heavy-tailed straggler distributions so the
runs exercise DAG gating, cloning, first-copy-wins kills and the δ
budget.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cluster.heterogeneity import paper_cluster_30_nodes
from repro.core.online import DollyMPScheduler
from repro.core.server_learning import LearningDollyMPScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.sim.runner import run_simulation
from repro.workload.google_trace import GoogleTraceGenerator, jobs_from_specs
from repro.workload.mapreduce import pagerank_job, wordcount_job

SEED = 7


def mixed_dag_jobs() -> list:
    """PageRank + WordCount DAGs plus trace-style jobs, cv high enough
    that clones launch and first-copy-wins kills occur."""
    jobs = []
    for i in range(6):
        t = 4.0 * i
        if i % 3 == 0:
            jobs.append(pagerank_job(3.0, iterations=2, arrival_time=t, job_id=10 + i, cv=0.9))
        else:
            jobs.append(wordcount_job(2.0 + i, arrival_time=t, job_id=10 + i, cv=0.9))
    gen = GoogleTraceGenerator(seed=SEED, mean_theta=25.0)
    trace_jobs = jobs_from_specs(gen.generate(8, mean_interarrival=3.0))
    # jobs_from_specs draws ids from the process-global job counter, so
    # repeated builds (vectorized run, then scalar run) would otherwise
    # get *different* ids — and ids feed tie-breaking via dict order.
    # Pin them so every build is byte-for-byte the same workload.
    for i, job in enumerate(trace_jobs):
        job.job_id = 100 + i
    jobs.extend(trace_jobs)
    return jobs


def launch_log(jobs) -> list[tuple]:
    """Every copy ever launched, in a canonical order."""
    log = []
    for job in jobs:
        for phase in job.phases:
            for task in phase.tasks:
                for copy in task.copies:
                    log.append(
                        (
                            task.uid,
                            copy.server_id,
                            copy.start_time,
                            copy.duration,
                            copy.is_clone,
                            copy.finished,
                            copy.killed,
                        )
                    )
    return log


def run_both(make_sched, schedule_interval=0.0):
    out = {}
    for vectorized in (True, False):
        cluster = paper_cluster_30_nodes()
        cluster.vectorized = vectorized
        jobs = mixed_dag_jobs()
        result = run_simulation(
            cluster,
            make_sched(),
            jobs,
            seed=SEED,
            schedule_interval=schedule_interval,
            max_time=1e7,
        )
        out[vectorized] = (result, launch_log(jobs))
    return out


@pytest.mark.parametrize(
    "make_sched",
    [
        lambda: DollyMPScheduler(max_clones=2),
        lambda: DollyMPScheduler(max_clones=0),
        lambda: TetrisScheduler(),
        lambda: LearningDollyMPScheduler(max_clones=2, bias=1.0),
    ],
    ids=["dollymp2", "dollymp0", "tetris", "learning-dollymp"],
)
def test_identical_launches_and_metrics(make_sched):
    runs = run_both(make_sched)
    res_vec, log_vec = runs[True]
    res_ref, log_ref = runs[False]

    # Identical copy-launch sequences (task, server, time, clone flag,
    # outcome) — the strongest equivalence: every placement decision
    # matched, including clone placements and first-copy-wins kills.
    assert log_vec == log_ref

    # Bit-identical flowtimes and aggregate metrics.
    assert np.array_equal(res_vec.flowtimes(), res_ref.flowtimes())
    assert res_vec.total_flowtime == res_ref.total_flowtime
    assert res_vec.makespan == res_ref.makespan
    assert res_vec.clones_launched == res_ref.clones_launched
    assert res_vec.copies_launched == res_ref.copies_launched
    assert res_vec.avg_utilization == res_ref.avg_utilization
    assert res_vec.total_usage == res_ref.total_usage


def test_identical_in_slotted_mode():
    """The trace-simulator mode (5 s slots) hits different schedule-pass
    batching; the paths must still agree exactly."""
    runs = run_both(lambda: DollyMPScheduler(max_clones=2), schedule_interval=5.0)
    res_vec, log_vec = runs[True]
    res_ref, log_ref = runs[False]
    assert log_vec == log_ref
    assert np.array_equal(res_vec.flowtimes(), res_ref.flowtimes())


def test_env_flag_selects_scalar_path(monkeypatch):
    monkeypatch.setenv("REPRO_SCALAR_PLACEMENT", "1")
    assert paper_cluster_30_nodes().vectorized is False
    monkeypatch.setenv("REPRO_SCALAR_PLACEMENT", "0")
    assert paper_cluster_30_nodes().vectorized is True
    monkeypatch.delenv("REPRO_SCALAR_PLACEMENT")
    assert paper_cluster_30_nodes().vectorized is True
    assert os.environ.get("REPRO_SCALAR_PLACEMENT") is None
