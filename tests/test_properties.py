"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import cdf_at, empirical_cdf
from repro.core.knapsack import max_count_knapsack, max_count_knapsack_exact
from repro.core.theory import flowtime_lower_bound
from repro.core.transient import compute_priorities
from repro.core.volume import JobMeasure
from repro.resources import Resources
from repro.workload.dag import critical_path_length, topological_order, validate_dag
from repro.workload.distributions import LogNormal, ParetoType1
from repro.workload.speedup import ParetoSpeedup

finite_pos = st.floats(min_value=0.01, max_value=1e6, allow_nan=False)


class TestResourcesProperties:
    @given(finite_pos, finite_pos, finite_pos, finite_pos)
    def test_add_sub_roundtrip(self, a, b, c, d):
        x, y = Resources.of(a, b), Resources.of(c, d)
        z = (x + y) - y
        assert math.isclose(z.cpu, x.cpu, rel_tol=1e-9)
        assert math.isclose(z.mem, x.mem, rel_tol=1e-9)

    @given(finite_pos, finite_pos, finite_pos, finite_pos)
    def test_fits_in_monotone(self, a, b, c, d):
        demand = Resources.of(min(a, c), min(b, d))
        cap = Resources.of(max(a, c), max(b, d))
        assert demand.fits_in(cap)

    @given(finite_pos, finite_pos, finite_pos, finite_pos)
    def test_dominant_share_bounds(self, a, b, c, d):
        demand, total = Resources.of(a, b), Resources.of(c, d)
        share = demand.dominant_share(total)
        assert share >= max(a / c, b / d) - 1e-12

    @given(finite_pos, finite_pos)
    def test_dot_with_self_nonnegative(self, a, b):
        r = Resources.of(a, b)
        assert r.dot(r) >= 0


class TestKnapsackProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=14),
        st.floats(min_value=0.0, max_value=300.0),
    )
    def test_greedy_matches_exact_count(self, weights, capacity):
        greedy = max_count_knapsack(weights, capacity)
        exact = max_count_knapsack_exact(weights, capacity)
        assert len(greedy) == len(exact)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=30),
        st.floats(min_value=0.0, max_value=300.0),
    )
    def test_selection_feasible_and_unique(self, weights, capacity):
        sel = max_count_knapsack(weights, capacity)
        assert len(set(sel)) == len(sel)
        assert sum(weights[i] for i in sel) <= capacity * (1 + 1e-9) + 1e-9

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=30),
        st.floats(min_value=0.01, max_value=300.0),
    )
    def test_adding_capacity_never_hurts(self, weights, capacity):
        assert len(max_count_knapsack(weights, 2 * capacity)) >= len(
            max_count_knapsack(weights, capacity)
        )


class TestDistributionProperties:
    @given(
        st.floats(min_value=0.1, max_value=1e4),
        st.floats(min_value=0.01, max_value=1e4),
    )
    def test_pareto_moment_fit_roundtrip(self, mean, std):
        p = ParetoType1.from_moments(mean, std)
        assert math.isclose(p.mean, mean, rel_tol=1e-9)
        # Huge cv drives α to 2 + O(cv⁻²); the stored float α then only
        # resolves α − 2 (hence the variance) to ~ulp(2)·cv² relative,
        # so widen the tolerance by that representation limit.
        repr_limit = 4.5e-16 * (std / mean) ** 2
        assert math.isclose(p.std, std, rel_tol=1e-6 + repr_limit)
        assert p.alpha > 2.0

    @given(
        st.floats(min_value=0.1, max_value=1e4),
        st.floats(min_value=0.0, max_value=1e4),
    )
    def test_lognormal_moment_fit_roundtrip(self, mean, std):
        d = LogNormal.from_moments(mean, std)
        assert math.isclose(d.mean, mean, rel_tol=1e-9)
        # Tiny std underflows through log1p/expm1 — absolute tolerance.
        assert math.isclose(d.std, std, rel_tol=1e-6, abs_tol=1e-12)

    @given(st.floats(min_value=1.01, max_value=50.0), st.integers(1, 64))
    def test_speedup_between_one_and_bound(self, alpha, r):
        h = ParetoSpeedup(alpha)
        assert 1.0 <= h(r) <= h.bound + 1e-12

    @given(st.floats(min_value=1.01, max_value=50.0), st.integers(1, 63))
    def test_speedup_subadditive_increments(self, alpha, r):
        """Concavity: increments h(r+1) - h(r) shrink."""
        h = ParetoSpeedup(alpha)
        if r >= 2:
            assert h(r + 1) - h(r) <= h(r) - h(r - 1) + 1e-12

    @given(st.floats(min_value=2.0, max_value=50.0), st.integers(1, 16))
    def test_h_at_most_r_for_light_enough_tails(self, alpha, r):
        """h(r) ≤ r whenever α ≥ 1 + 1/r (always true for α ≥ 2, the
        regime every moment-fitted Pareto lives in)."""
        assert ParetoSpeedup(alpha)(r) <= r + 1e-12

    @given(st.integers(2, 16))
    def test_h_exceeds_r_for_very_heavy_tails(self, r):
        """For α < 1 + 1/r cloning is SUPER-linear: E[min of r] drops
        faster than the copy count grows — the heavy-tail regime that
        motivates cloning in the paper (Sec. 4.1)."""
        alpha = 1.0 + 0.5 / r
        assert ParetoSpeedup(alpha)(r) > r


class TestDAGProperties:
    @st.composite
    def random_dag(draw):
        n = draw(st.integers(1, 8))
        parents = []
        for k in range(n):
            if k == 0:
                parents.append(())
            else:
                ps = draw(
                    st.lists(st.integers(0, k - 1), max_size=min(k, 3), unique=True)
                )
                parents.append(tuple(ps))
        return parents

    @given(random_dag())
    def test_topo_order_respects_parents(self, parents):
        validate_dag(parents)
        order = topological_order(parents)
        pos = {k: i for i, k in enumerate(order)}
        for child, ps in enumerate(parents):
            for p in ps:
                assert pos[p] < pos[child]

    @given(random_dag())
    def test_critical_path_at_least_max_node(self, parents):
        lengths = [float(k + 1) for k in range(len(parents))]
        cp = critical_path_length(parents, lambda k: lengths[k])
        assert cp >= max(lengths) - 1e-12
        assert cp <= sum(lengths) + 1e-12


class TestPriorityProperties:
    measures = st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=100.0),  # volume
            st.floats(min_value=0.01, max_value=1000.0),  # length
        ),
        min_size=1,
        max_size=25,
    )

    @given(measures)
    def test_all_jobs_ranked(self, pairs):
        ms = [
            JobMeasure(job_id=i, volume=v, length=e, max_dominant_share=0.5)
            for i, (v, e) in enumerate(pairs)
        ]
        prios = compute_priorities(ms)
        assert set(prios) == set(range(len(ms)))
        assert all(p >= 1 for p in prios.values())

    @given(measures)
    def test_dominated_job_never_ranked_higher(self, pairs):
        """If job A has strictly smaller volume and no larger length than
        B, A's priority level is ≤ B's (ties can break either way)."""
        ms = [
            JobMeasure(job_id=i, volume=v, length=e, max_dominant_share=0.5)
            for i, (v, e) in enumerate(pairs)
        ]
        prios = compute_priorities(ms)
        for a in ms:
            for b in ms:
                if a.volume < b.volume and a.length <= b.length:
                    assert prios[a.job_id] <= prios[b.job_id]

    @given(measures)
    def test_lower_bound_nonnegative_and_monotone(self, pairs):
        ms = [
            JobMeasure(job_id=i, volume=v, length=e, max_dominant_share=0.5)
            for i, (v, e) in enumerate(pairs)
        ]
        lb = flowtime_lower_bound(ms)
        assert lb >= 0
        extra = JobMeasure(
            job_id=10_000, volume=ms[0].volume, length=ms[0].length, max_dominant_share=0.5
        )
        assert flowtime_lower_bound(ms + [extra]) >= lb - 1e-9


class TestCDFProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
    def test_cdf_monotone_and_bounded(self, values):
        x, f = empirical_cdf(values)
        assert np.all(np.diff(f) >= 0)
        assert f[-1] == 1.0

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50),
        st.lists(st.floats(min_value=-10, max_value=110), min_size=1, max_size=10),
    )
    def test_cdf_at_monotone_in_points(self, values, points):
        pts = sorted(points)
        got = cdf_at(values, pts)
        assert np.all(np.diff(got) >= 0)
        assert np.all((got >= 0) & (got <= 1))
