"""Requeue semantics: fresh-primary relaunch, fault_losses vs the
lifetime copy cap, phase/task state coherence (DESIGN.md §5.5)."""

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.resources import Resources
from repro.schedulers.base import Scheduler
from repro.sim.actions import Fail
from repro.sim.engine import SimulationEngine
from repro.workload.task import TaskState
from tests.conftest import make_chain_job, make_single_task_job


class CrashEveryLaunch(Scheduler):
    """Launches the pending task on server 0 and crashes that server
    ``crashes`` times (recovering capacity is irrelevant: each relaunch
    goes to the next still-up server)."""

    name = "crash-every-launch"

    def __init__(self, crashes: int) -> None:
        self.crashes = crashes
        self.done = 0

    def schedule(self, view):
        while True:
            up = [s for s in view.cluster if s.up]
            launched = False
            for j in view.active_jobs:
                for t in j.ready_tasks():
                    view.launch(t, up[0])
                    launched = True
            if launched and self.done < self.crashes:
                self.done += 1
                view.apply(Fail(up[0]))
                continue  # relaunch the orphan in this same pass
            return


class TestLifetimeCap:
    def test_fault_losses_exempt_from_copy_cap(self):
        """max_copies_per_task=1 would normally forbid a second copy;
        copies lost to faults don't count against the lifetime cap, so a
        twice-crashed task still relaunches (and a policy bug here would
        raise the engine's copy-cap RuntimeError)."""
        cluster = homogeneous_cluster(3, Resources.of(4, 4), slowdown=1.0)
        job = make_single_task_job(theta=10.0)
        engine = SimulationEngine(
            cluster,
            CrashEveryLaunch(crashes=2),
            [job],
            sanitize=True,
            max_copies_per_task=1,
        )
        result = engine.run()
        task = job.phases[0].tasks[0]
        assert task.state is TaskState.FINISHED
        assert len(task.copies) == 3  # two fault losses + the survivor
        assert task.fault_losses == 2
        assert engine.tasks_requeued == 2
        assert len(result.records) == 1


class TestRequeueCoherence:
    def test_requeued_task_is_fresh_primary(self):
        cluster = homogeneous_cluster(2, Resources.of(4, 4), slowdown=1.0)
        job = make_single_task_job(theta=10.0)
        engine = SimulationEngine(cluster, CrashEveryLaunch(crashes=1), [job])
        engine.run()
        task = job.phases[0].tasks[0]
        assert all(not c.is_clone for c in task.copies)
        assert engine.clones_launched == 0

    def test_phase_counters_cohere_after_requeue(self):
        """A crash mid-phase leaves num_pending/num_running consistent —
        the sanitizer's REQUEUE_COHERENCE invariant, asserted directly."""
        cluster = homogeneous_cluster(3, Resources.of(8, 8), slowdown=1.0)
        job = make_chain_job(2, 3, theta=10.0)

        class CrashOnce(Scheduler):
            name = "crash-once"

            def __init__(self):
                self.crashed = False

            def schedule(self, view):
                for j in view.active_jobs:
                    for t in j.ready_tasks():
                        up = [s for s in view.cluster if s.up]
                        # Spread over servers so a crash orphans a strict
                        # subset of the phase.
                        view.launch(t, up[t.uid[2] % len(up)])
                if not self.crashed and view.cluster[0].running_copies:
                    self.crashed = True
                    view.apply(Fail(view.cluster[0]))
                    phase = view.active_jobs[0].phases[0]
                    pending = sum(
                        1 for t in phase.tasks if t.state is TaskState.PENDING
                    )
                    running = sum(
                        1 for t in phase.tasks if t.state is TaskState.RUNNING
                    )
                    assert phase.num_pending == pending
                    assert phase.num_running == running
                    assert pending >= 1  # the crash did orphan something
                    for t in phase.tasks:
                        if t.state is TaskState.PENDING:
                            assert t.num_live_copies == 0

        engine = SimulationEngine(cluster, CrashOnce(), [job], sanitize=True)
        result = engine.run()
        assert len(result.records) == 1
        assert engine.tasks_requeued >= 1
