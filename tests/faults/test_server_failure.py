"""Server crash/recover semantics: copy kills, capacity coherence,
clone-as-recovery vs requeue, keep_one_up (DESIGN.md §5.5)."""

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster, single_server_cluster
from repro.faults import FaultProfile
from repro.resources import Resources
from repro.schedulers.base import Scheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.sim.actions import Fail, InvalidAction, Recover
from repro.sim.engine import SimulationEngine
from repro.workload.task import TaskState
from tests.conftest import make_single_task_job


class FailAfterLaunch(Scheduler):
    """Launches every ready task on server 0 (plus an optional clone on
    server 1), then crashes server 0 — all within one decision point."""

    name = "fail-after-launch"

    def __init__(self, *, clone: bool) -> None:
        self.clone = clone
        self.failed = False

    def schedule(self, view):
        if not self.failed:
            for j in view.active_jobs:
                for t in j.ready_tasks():
                    view.launch(t, view.cluster[0])
                    if self.clone:
                        view.launch(t, view.cluster[1], clone=True)
            self.failed = True
            view.apply(Fail(view.cluster[0]))
        # Anything the crash orphaned is PENDING again: relaunch it on
        # the surviving server within the same pass.
        for j in view.active_jobs:
            for t in j.ready_tasks():
                view.launch(t, view.cluster[1])


class TestCrashSemantics:
    def test_clone_masks_crash(self):
        """Primary dies with its server; the clone keeps the task RUNNING
        (clone-as-recovery) and finishes the job."""
        cluster = homogeneous_cluster(2, Resources.of(4, 4), slowdown=1.0)
        job = make_single_task_job(theta=10.0)
        engine = SimulationEngine(
            cluster, FailAfterLaunch(clone=True), [job], sanitize=True
        )
        result = engine.run()
        task = job.phases[0].tasks[0]
        assert task.state is TaskState.FINISHED
        assert task.fault_losses == 1
        assert engine.faults_injected == 1
        assert engine.copies_lost == 1
        assert engine.recoveries_masked_by_clone == 1
        assert engine.tasks_requeued == 0
        # The surviving clone finished; the crashed primary shows killed.
        assert sum(1 for c in task.copies if c.finished) == 1
        assert sum(1 for c in task.copies if c.killed) == 1
        assert result.records[0].flowtime == pytest.approx(10.0)

    def test_sole_copy_requeues(self):
        """No clone: the orphaned task returns to PENDING and relaunches
        on a healthy server as a fresh primary."""
        cluster = homogeneous_cluster(2, Resources.of(4, 4), slowdown=1.0)
        job = make_single_task_job(theta=10.0)
        engine = SimulationEngine(
            cluster, FailAfterLaunch(clone=False), [job], sanitize=True
        )
        result = engine.run()
        task = job.phases[0].tasks[0]
        assert task.state is TaskState.FINISHED
        assert engine.tasks_requeued == 1
        assert engine.recoveries_masked_by_clone == 0
        assert len(task.copies) == 2
        # The relaunch is a primary, not a clone (requeued tasks restart
        # their copy lifecycle), so no clone shows up in the record.
        assert all(not c.is_clone for c in task.copies)
        assert result.records[0].num_clones == 0

    def test_down_server_capacity_coherent(self):
        """A crashed server returns allocation and pins availability to
        bitwise zero; recovery restores the exact capacity."""
        cluster = homogeneous_cluster(2, Resources.of(4, 4), slowdown=1.0)
        job = make_single_task_job(theta=10.0)
        engine = SimulationEngine(cluster, FailAfterLaunch(clone=False), [job])
        engine.run()
        down = cluster[0]
        assert not down.up
        assert down.allocated.is_zero()
        assert down.available == Resources(0.0, 0.0)
        assert len(down.running_copies) == 0
        # Recovery (applied post-run directly) restores full capacity.
        engine.apply(Recover(down))
        assert down.up
        assert down.available == down.capacity

    def test_mirror_tracks_up_state(self):
        cluster = homogeneous_cluster(2, Resources.of(4, 4), slowdown=1.0)
        job = make_single_task_job(theta=10.0)
        engine = SimulationEngine(cluster, FailAfterLaunch(clone=False), [job])
        engine.run()
        mirror = cluster.mirror
        assert not bool(mirror.up[0])
        assert bool(mirror.up[1])
        assert float(mirror.avail_cpu[0]) == 0.0
        engine.apply(Recover(cluster[0]))
        assert bool(mirror.up[0])


class TestActionValidation:
    def test_fail_down_server_rejected(self):
        cluster = homogeneous_cluster(2, Resources.of(4, 4))
        job = make_single_task_job(theta=10.0)
        engine = SimulationEngine(cluster, FIFOScheduler(), [job])
        engine.apply(Fail(cluster[0]))
        with pytest.raises(InvalidAction, match="already down"):
            engine.apply(Fail(cluster[0]))

    def test_recover_up_server_rejected(self):
        cluster = homogeneous_cluster(2, Resources.of(4, 4))
        job = make_single_task_job(theta=10.0)
        engine = SimulationEngine(cluster, FIFOScheduler(), [job])
        with pytest.raises(InvalidAction, match="already up"):
            engine.apply(Recover(cluster[0]))

    def test_launch_on_down_server_rejected(self):
        cluster = homogeneous_cluster(2, Resources.of(4, 4))
        job = make_single_task_job(theta=10.0)

        class LaunchOnDown(Scheduler):
            name = "launch-on-down"

            def schedule(self, view):
                for j in view.active_jobs:
                    for t in j.ready_tasks():
                        view.apply(Fail(view.cluster[0]))
                        with pytest.raises(InvalidAction, match="is down"):
                            view.launch(t, view.cluster[0])
                        view.launch(t, view.cluster[1])
                        return

        SimulationEngine(cluster, LaunchOnDown(), [job]).run()


class TestChurnEndToEnd:
    def test_churn_run_completes_under_sanitizer(self):
        """Aggressive churn on a small cluster: every job still finishes,
        faults demonstrably fired, capacity is conserved afterwards."""
        cluster = homogeneous_cluster(4, Resources.of(4, 8), slowdown=1.0)
        jobs = [
            make_single_task_job(theta=20.0, arrival_time=10.0 * i, job_id=i)
            for i in range(6)
        ]
        engine = SimulationEngine(
            cluster,
            FIFOScheduler(),
            jobs,
            seed=3,
            sanitize=True,
            fault_profile=FaultProfile(mtbf=40.0, mttr=10.0),
        )
        result = engine.run()
        assert len(result.records) == 6
        assert result.faults_injected > 0
        for server in cluster:
            if server.up:
                # Drained cluster: full capacity back, bit-for-bit.
                assert server.available == server.capacity
            else:
                assert server.available == Resources(0.0, 0.0)

    def test_keep_one_up_protects_last_server(self):
        """A single-server cluster under heavy churn never actually
        crashes — the workload completes without a single injection."""
        cluster = single_server_cluster(Resources.of(4, 8), slowdown=1.0)
        jobs = [make_single_task_job(theta=30.0, job_id=0)]
        engine = SimulationEngine(
            cluster,
            FIFOScheduler(),
            jobs,
            seed=1,
            sanitize=True,
            fault_profile=FaultProfile(mtbf=5.0, mttr=5.0),
        )
        result = engine.run()
        assert len(result.records) == 1
        assert engine.faults_injected == 0
        assert cluster[0].up

    def test_fault_summary_keys_only_when_fired(self):
        cluster = homogeneous_cluster(4, Resources.of(4, 8), slowdown=1.0)
        jobs = [make_single_task_job(theta=20.0, job_id=0)]
        plain = SimulationEngine(cluster, FIFOScheduler(), jobs).run()
        assert "faults_injected" not in plain.summary()
