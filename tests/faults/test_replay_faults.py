"""Replay determinism under fault injection (DESIGN.md §5.5).

A recorded fault run must replay bit-identically: the trace carries the
profile + churn seed in ``meta["faults"]``, the replay engine rebuilds
the injector (re-deriving the identical failure realization), and the
journaled ``fail``/``recover`` decisions are verified rather than
re-applied — so replay never raises InvalidAction on an already-dead
server."""

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.core.online import DollyMPScheduler
from repro.faults import FaultProfile
from repro.resources import Resources
from repro.sim.actions import FAULT_POLICY, DecisionTrace
from repro.sim.replay import assert_replay_identical, replay_trace
from repro.sim.runner import run_recorded, run_simulation
from tests.conftest import make_chain_job, make_single_task_job

CHURN = FaultProfile(mtbf=60.0, mttr=15.0, copy_fail_rate=1.0 / 120.0)


def _cluster():
    return homogeneous_cluster(4, Resources.of(8, 16), slowdown=1.0)


def _jobs():
    out = []
    for i in range(5):
        if i % 2 == 0:
            out.append(make_chain_job(2, 4, theta=20.0, sigma=8.0,
                                      arrival_time=15.0 * i, job_id=i))
        else:
            out.append(make_single_task_job(theta=25.0, sigma=10.0,
                                            arrival_time=15.0 * i, job_id=i))
    return out


def _record():
    return run_recorded(
        _cluster(),
        DollyMPScheduler(max_clones=2),
        _jobs(),
        seed=13,
        sanitize=True,
        fault_profile=CHURN,
    )


class TestFaultTraceMeta:
    def test_meta_carries_profile_and_seed(self):
        result, trace = _record()
        assert result.faults_injected > 0, "profile too tame for the test"
        faults = trace.meta["faults"]
        assert FaultProfile.from_meta(faults["profile"]) == CHURN
        assert isinstance(faults["churn_seed"], int)

    def test_fault_decisions_journaled(self):
        _, trace = _record()
        fault_decisions = [d for d in trace if d.kind in ("fail", "recover")]
        assert fault_decisions, "no Fail/Recover journaled"
        for d in fault_decisions:
            assert d.policy == FAULT_POLICY
            assert (d.job_id, d.phase_index, d.task_index) == (-1, -1, -1)
            assert d.server_id >= 0

    def test_no_fault_run_has_no_faults_meta(self):
        _, trace = run_recorded(
            _cluster(), DollyMPScheduler(max_clones=2), _jobs(), seed=13
        )
        assert "faults" not in trace.meta


class TestReplayIdentity:
    def test_fault_run_replays_bit_identically(self):
        result, trace = _record()
        assert result.faults_injected > 0
        replayed = replay_trace(trace, _cluster(), _jobs(), sanitize=True)
        assert_replay_identical(result, replayed)

    def test_replay_after_jsonl_round_trip(self, tmp_path):
        result, trace = _record()
        path = tmp_path / "fault_trace.jsonl"
        trace.dump_jsonl(path)
        loaded = DecisionTrace.load_jsonl(path)
        assert loaded.decisions == trace.decisions
        replayed = replay_trace(loaded, _cluster(), _jobs(), sanitize=True)
        assert_replay_identical(result, replayed)

    def test_same_seed_runs_byte_identical(self):
        (r1, t1), (r2, t2) = _record(), _record()
        assert t1.decisions == t2.decisions
        assert_replay_identical(r1, r2)

    def test_different_churn_seed_diverges(self):
        """The realization is a function of churn_seed — changing it
        while keeping the sim seed must change the failure sequence."""
        _, t1 = _record()
        _, t2 = run_recorded(
            _cluster(),
            DollyMPScheduler(max_clones=2),
            _jobs(),
            seed=13,
            fault_profile=CHURN,
            churn_seed=999,
        )
        f1 = [(d.kind, d.time, d.server_id) for d in t1 if d.kind == "fail"]
        f2 = [(d.kind, d.time, d.server_id) for d in t2 if d.kind == "fail"]
        assert f1 != f2


class TestNoFaultBitIdentity:
    def test_disabled_profile_identical_to_no_profile(self):
        """``FaultProfile()`` (nothing enabled) is normalized away: the
        run is bit-identical to one that never mentioned faults."""
        base = run_simulation(
            _cluster(), DollyMPScheduler(max_clones=2), _jobs(), seed=13
        )
        gated = run_simulation(
            _cluster(),
            DollyMPScheduler(max_clones=2),
            _jobs(),
            seed=13,
            fault_profile=FaultProfile(),
        )
        assert_replay_identical(base, gated)
        assert gated.faults_injected == 0

    def test_fault_rng_never_perturbs_durations(self):
        """Fault draws come from a third stream: a run whose profile
        never fires (astronomical MTBF) matches the no-fault run's
        per-job records exactly."""
        base = run_simulation(
            _cluster(), DollyMPScheduler(max_clones=2), _jobs(), seed=13
        )
        quiet = run_simulation(
            _cluster(),
            DollyMPScheduler(max_clones=2),
            _jobs(),
            seed=13,
            fault_profile=FaultProfile(mtbf=1e15),
        )
        assert quiet.faults_injected == 0
        assert base.records == quiet.records


class TestReplayWithObservability:
    def test_replay_with_observability_attached(self):
        from repro.observability import Observability

        result, trace = _record()
        obs = Observability()
        replayed = replay_trace(
            trace, _cluster(), _jobs(), sanitize=True, observability=obs
        )
        assert_replay_identical(result, replayed)
        snap = obs.snapshot()
        assert snap, "observability produced no snapshot"


def test_fault_profile_kwarg_rejected_when_mismatched():
    """Explicit replay parameters win over the trace meta (callers may
    deliberately replay under a different realization and expect a
    divergence, not silent meta precedence)."""
    result, trace = _record()
    with pytest.raises(Exception):
        replayed = replay_trace(
            trace, _cluster(), _jobs(), sanitize=True, churn_seed=424242
        )
        # A different realization cannot reproduce the recording.
        assert_replay_identical(result, replayed)
