"""Per-copy failure semantics: kill-one-copy, clone masking, requeue,
stale-event tolerance (DESIGN.md §5.5)."""

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.faults import FaultProfile
from repro.resources import Resources
from repro.schedulers.base import Scheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventKind
from repro.workload.task import TaskState
from tests.conftest import make_single_task_job


class _CopyFailDriver(Scheduler):
    """Launches a primary (plus optional clone), then arms a COPY_FAIL
    event against the primary at a chosen offset — deterministic fault
    timing without an injector."""

    name = "copy-fail-driver"

    def __init__(self, *, clone: bool, fail_after: float) -> None:
        self.clone = clone
        self.fail_after = fail_after
        self.engine: SimulationEngine | None = None
        self.armed = False

    def schedule(self, view):
        if not self.armed:
            for j in view.active_jobs:
                for t in j.ready_tasks():
                    primary = view.launch(t, view.cluster[0])
                    if self.clone:
                        view.launch(t, view.cluster[1], clone=True)
                    assert self.engine is not None
                    self.engine.events.push(
                        view.time + self.fail_after, EventKind.COPY_FAIL, primary
                    )
            self.armed = True
            return
        for j in view.active_jobs:
            for t in j.ready_tasks():
                view.launch(t, view.cluster[1])


def _run_driver(*, clone: bool, fail_after: float):
    cluster = homogeneous_cluster(2, Resources.of(4, 4), slowdown=1.0)
    job = make_single_task_job(theta=10.0)
    driver = _CopyFailDriver(clone=clone, fail_after=fail_after)
    engine = SimulationEngine(cluster, driver, [job], sanitize=True)
    driver.engine = engine
    result = engine.run()
    return engine, job, result


class TestCopyFail:
    def test_clone_masks_copy_failure(self):
        engine, job, result = _run_driver(clone=True, fail_after=3.0)
        task = job.phases[0].tasks[0]
        assert task.state is TaskState.FINISHED
        assert engine.copies_lost == 1
        assert engine.recoveries_masked_by_clone == 1
        assert engine.tasks_requeued == 0
        assert task.fault_losses == 1
        # The clone carried the task to its original finish time.
        assert result.records[0].flowtime == pytest.approx(10.0)

    def test_sole_copy_failure_requeues(self):
        engine, job, result = _run_driver(clone=False, fail_after=3.0)
        task = job.phases[0].tasks[0]
        assert task.state is TaskState.FINISHED
        assert engine.tasks_requeued == 1
        assert engine.recoveries_masked_by_clone == 0
        # Relaunched at t=3 on the second server: finishes at 13.
        assert result.records[0].flowtime == pytest.approx(13.0)
        assert all(not c.is_clone for c in task.copies)

    def test_stale_copy_fail_ignored(self):
        """A COPY_FAIL landing after the copy finished is a no-op."""
        engine, job, result = _run_driver(clone=False, fail_after=15.0)
        assert engine.copies_lost == 0
        assert engine.tasks_requeued == 0
        assert result.records[0].flowtime == pytest.approx(10.0)

    def test_server_stays_up_and_releases(self):
        engine, job, _ = _run_driver(clone=False, fail_after=3.0)
        assert all(s.up for s in engine.cluster)
        assert engine.cluster.total_allocated().is_zero()


class TestFlakyEndToEnd:
    def test_flaky_run_completes_under_sanitizer(self):
        """A high per-copy hazard: copies die, tasks requeue, and every
        job still completes with the sanitizer validating each event."""
        cluster = homogeneous_cluster(4, Resources.of(4, 8), slowdown=1.0)
        jobs = [
            make_single_task_job(theta=15.0, arrival_time=5.0 * i, job_id=i)
            for i in range(6)
        ]
        engine = SimulationEngine(
            cluster,
            FIFOScheduler(),
            jobs,
            seed=11,
            sanitize=True,
            fault_profile=FaultProfile(copy_fail_rate=1.0 / 20.0),
        )
        result = engine.run()
        assert len(result.records) == 6
        assert result.copies_lost > 0
        assert result.copies_lost == result.faults_injected
        assert engine.cluster.total_allocated().is_zero()

    def test_flaky_runs_deterministic(self):
        """Two same-seed flaky runs realize the identical failure
        sequence and end bit-identically."""

        def run_once():
            cluster = homogeneous_cluster(4, Resources.of(4, 8), slowdown=1.0)
            jobs = [
                make_single_task_job(theta=15.0, arrival_time=5.0 * i, job_id=i)
                for i in range(6)
            ]
            engine = SimulationEngine(
                cluster,
                FIFOScheduler(),
                jobs,
                seed=11,
                fault_profile=FaultProfile(copy_fail_rate=1.0 / 20.0),
            )
            return engine.run()

        a, b = run_once(), run_once()
        assert a.records == b.records
        assert a.copies_lost == b.copies_lost
