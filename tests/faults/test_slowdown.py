"""Transient slowdown windows: scaling, exact restore, no stacking
(DESIGN.md §5.5)."""

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.faults import FaultProfile
from repro.resources import Resources
from repro.schedulers.fifo import FIFOScheduler
from repro.sim.engine import SimulationEngine
from tests.conftest import make_single_task_job


def _engine_with_brownout(slowdown=1.3):
    cluster = homogeneous_cluster(2, Resources.of(4, 8), slowdown=slowdown)
    jobs = [make_single_task_job(theta=15.0, job_id=0)]
    return SimulationEngine(
        cluster,
        FIFOScheduler(),
        jobs,
        seed=2,
        fault_profile=FaultProfile(slowdown_rate=1.0 / 900.0, slowdown_factor=3.0),
    )


class TestWindowMechanics:
    def test_slow_start_scales_factor(self):
        engine = _engine_with_brownout(slowdown=1.3)
        server = engine.cluster[0]
        engine.faults.on_slow_start(server)
        assert server.slowdown == pytest.approx(1.3 * 3.0)

    def test_slow_end_restores_exactly(self):
        """The pre-window slowdown comes back bit-for-bit — saved, not
        re-derived by dividing (no float drift)."""
        engine = _engine_with_brownout(slowdown=1.3)
        server = engine.cluster[0]
        before = server.slowdown
        engine.faults.on_slow_start(server)
        engine.faults.on_slow_end(server)
        assert server.slowdown == before

    def test_nested_windows_do_not_stack(self):
        engine = _engine_with_brownout(slowdown=1.3)
        server = engine.cluster[0]
        engine.faults.on_slow_start(server)
        engine.faults.on_slow_start(server)  # overlapping window
        assert server.slowdown == pytest.approx(1.3 * 3.0)  # not ×9
        engine.faults.on_slow_end(server)
        assert server.slowdown == 1.3

    def test_slow_end_without_start_is_noop(self):
        engine = _engine_with_brownout(slowdown=1.3)
        server = engine.cluster[0]
        engine.faults.on_slow_end(server)
        assert server.slowdown == 1.3


class TestBrownoutEndToEnd:
    def test_brownout_stretches_durations(self):
        """With windows open essentially always, copies launched inside
        one take slowdown_factor× longer than the nominal run."""

        def run_with(rate):
            cluster = homogeneous_cluster(2, Resources.of(4, 8), slowdown=1.0)
            # Arrives at t=1: the first windows (arriving at rate ~1e6/s)
            # are already open when the copy launches.
            jobs = [make_single_task_job(theta=10.0, arrival_time=1.0, job_id=0)]
            profile = (
                FaultProfile(
                    slowdown_rate=rate,
                    slowdown_factor=2.0,
                    slowdown_duration=1e6,
                )
                if rate
                else None
            )
            engine = SimulationEngine(
                cluster, FIFOScheduler(), jobs, seed=4, fault_profile=profile
            )
            return engine.run()

        nominal = run_with(None)
        assert nominal.records[0].flowtime == pytest.approx(10.0)
        # Window arrival mean ~1e-6 s: open before the launch with
        # overwhelming probability, lasting ~1e6 s.
        slowed = run_with(1e6)
        assert slowed.records[0].flowtime == pytest.approx(20.0)
        assert slowed.faults_injected >= 1

    def test_brownout_run_deterministic_and_sanitized(self):
        def run_once():
            cluster = homogeneous_cluster(4, Resources.of(4, 8), slowdown=1.2)
            jobs = [
                make_single_task_job(theta=15.0, arrival_time=5.0 * i, job_id=i)
                for i in range(5)
            ]
            engine = SimulationEngine(
                cluster,
                FIFOScheduler(),
                jobs,
                seed=9,
                sanitize=True,
                fault_profile=FaultProfile(
                    slowdown_rate=1.0 / 30.0, slowdown_factor=2.0, slowdown_duration=20.0
                ),
            )
            return engine.run()

        a, b = run_once(), run_once()
        assert len(a.records) == 5
        assert a.records == b.records
