"""Unit tests for FaultProfile: validation, presets, meta round-trip."""

import math

import pytest

from repro.faults import FAULT_PROFILES, FaultProfile, named_profile


class TestValidation:
    def test_default_injects_nothing(self):
        p = FaultProfile()
        assert not p.enabled
        assert not p.server_churn

    def test_finite_mtbf_enables_churn(self):
        p = FaultProfile(mtbf=600.0)
        assert p.server_churn and p.enabled

    def test_copy_fail_rate_enables(self):
        assert FaultProfile(copy_fail_rate=0.01).enabled

    def test_slowdown_rate_enables(self):
        assert FaultProfile(slowdown_rate=0.01).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mtbf": 0.0},
            {"mtbf": -1.0},
            {"mttr": 0.0},
            {"copy_fail_rate": -0.1},
            {"slowdown_rate": -0.1},
            {"slowdown_factor": 1.0},
            {"slowdown_duration": 0.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            FaultProfile(**kwargs)


class TestMetaRoundTrip:
    def test_round_trip_identity(self):
        for name, profile in FAULT_PROFILES.items():
            assert FaultProfile.from_meta(profile.to_meta()) == profile, name

    def test_infinite_mtbf_serializes_as_none(self):
        meta = FaultProfile().to_meta()
        assert meta["mtbf"] is None
        assert math.isinf(FaultProfile.from_meta(meta).mtbf)

    def test_meta_is_plain_json_scalars(self):
        import json

        for profile in FAULT_PROFILES.values():
            json.dumps(profile.to_meta())  # must not raise


class TestPresets:
    def test_none_preset_disabled(self):
        assert not FAULT_PROFILES["none"].enabled

    def test_all_other_presets_enabled(self):
        for name, p in FAULT_PROFILES.items():
            if name != "none":
                assert p.enabled, name

    def test_named_profile_case_insensitive(self):
        assert named_profile("CHURN") == FAULT_PROFILES["churn"]

    def test_named_profile_unknown(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            named_profile("meteor-strike")

    def test_named_profile_overrides(self):
        p = named_profile("churn", mtbf=120.0, mttr=5.0)
        assert p.mtbf == 120.0 and p.mttr == 5.0
        # Non-overridden fields keep the preset's values.
        assert p.keep_one_up is FAULT_PROFILES["churn"].keep_one_up

    def test_named_profile_no_overrides_returns_preset(self):
        assert named_profile("flaky") is FAULT_PROFILES["flaky"]

    def test_override_can_enable_none(self):
        p = named_profile("none", copy_fail_rate=0.5)
        assert p.enabled
