"""Session-API tests (DESIGN.md §5.8): step/run_until/drain/ingest,
arrival sources, and equivalence with the legacy one-shot run."""

import json
from dataclasses import replace

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.faults import FAULT_PROFILES
from repro.resources import Resources
from repro.schedulers.fifo import FIFOScheduler
from repro.core.online import DollyMPScheduler
from repro.sim.engine import SimulationEngine
from repro.sim.session import SimulationSession
from repro.workload.arrivals import GeneratorSource, JsonlSource, StaticSource
from repro.workload.google_trace import (
    GoogleTraceGenerator,
    jobs_from_specs,
    spec_to_dict,
)
from tests.conftest import make_chain_job, make_single_task_job


def trace_specs(n=12, seed=3, gap=15.0):
    specs = GoogleTraceGenerator(seed=seed).generate(n, mean_interarrival=gap)
    return [replace(s, job_id=i) for i, s in enumerate(specs)]


def mk_cluster():
    return homogeneous_cluster(8, Resources.of(16, 32))


def mk_engine(jobs_or_source, **kw):
    kw.setdefault("seed", 7)
    return SimulationEngine(mk_cluster(), DollyMPScheduler(max_clones=2),
                            jobs_or_source, **kw)


class TestStepAPI:
    def test_step_processes_one_instant(self, small_cluster):
        a = make_single_task_job(theta=10.0, arrival_time=0.0, job_id=1)
        b = make_single_task_job(theta=10.0, arrival_time=5.0, job_id=2)
        engine = SimulationEngine(small_cluster, FIFOScheduler(), [a, b])
        assert engine.step()  # t=0 arrival
        assert engine.now == 0.0
        assert engine.step()  # t=5 arrival
        assert engine.now == 5.0
        assert engine.step()  # t=10 finish of a
        assert engine.now == 10.0
        assert engine.step()  # t=15 finish of b
        assert not engine.step()
        assert engine.finalize().num_jobs == 2

    def test_run_until_inclusive_and_exclusive(self, small_cluster):
        jobs = [
            make_single_task_job(theta=1.0, arrival_time=float(t), job_id=t)
            for t in range(5)
        ]
        engine = SimulationEngine(small_cluster, FIFOScheduler(), jobs)
        engine.run_until(2.0, inclusive=False)
        assert engine.now < 2.0
        engine.run_until(2.0)
        assert engine.now == 2.0
        engine.run_until(1e9)  # beyond horizon == drain
        result = engine.finalize()
        assert result.num_jobs == 5
        # clock stops at the last event, not the bound
        assert result.simulated_time == 5.0

    def test_drain_counts_instants(self, small_cluster):
        job = make_chain_job(2, 2, theta=3.0)
        engine = SimulationEngine(small_cluster, FIFOScheduler(), [job])
        n = engine.drain()
        assert n > 0
        assert engine.finalize().num_jobs == 1

    def test_run_is_start_drain_finalize(self, small_cluster):
        job = make_single_task_job(theta=4.0, job_id=1)
        one = SimulationEngine(small_cluster, FIFOScheduler(), [job]).run()
        job2 = make_single_task_job(theta=4.0, job_id=1)
        e = SimulationEngine(small_cluster, FIFOScheduler(), [job2])
        e.start()
        e.drain()
        two = e.finalize()
        assert one.deterministic() == two.deterministic()

    def test_start_idempotent(self, small_cluster):
        job = make_single_task_job(theta=4.0)
        e = SimulationEngine(small_cluster, FIFOScheduler(), [job])
        e.start()
        before = len(e.events)
        e.start()
        assert len(e.events) == before

    def test_max_time_guard_rides_run_until(self, small_cluster):
        job = make_single_task_job(theta=100.0)
        engine = SimulationEngine(
            small_cluster, FIFOScheduler(), [job], max_time=10.0
        )
        with pytest.raises(RuntimeError, match="max_time"):
            engine.run_until(1e9)

    def test_starvation_message_under_slotted(self):
        # Regression: the starvation error must still carry the
        # scheduler name when driven through run_until with slots.
        class DoNothing(FIFOScheduler):
            name = "lazy-slotted"

            def schedule(self, view):
                pass

        cluster = homogeneous_cluster(1, Resources.of(8, 8))
        job = make_single_task_job(theta=5.0)
        engine = SimulationEngine(
            cluster, DoNothing(), [job], max_time=100.0, schedule_interval=5.0
        )
        with pytest.raises(RuntimeError) as exc:
            engine.run_until(1e9)
        msg = str(exc.value)
        assert "lazy-slotted" in msg
        assert "max_time=100" in msg or "starved" in msg

    def test_finalize_rejects_unfinished(self, small_cluster):
        a = make_single_task_job(theta=10.0, arrival_time=0.0, job_id=1)
        engine = SimulationEngine(small_cluster, FIFOScheduler(), [a])
        engine.run_until(0.0)  # arrival processed, finish still pending
        with pytest.raises(RuntimeError, match="unfinished"):
            engine.finalize()

    def test_partial_result_between_instants(self, small_cluster):
        a = make_single_task_job(theta=1.0, arrival_time=0.0, job_id=1)
        b = make_single_task_job(theta=1.0, arrival_time=10.0, job_id=2)
        engine = SimulationEngine(small_cluster, FIFOScheduler(), [a, b])
        engine.run_until(5.0)
        partial = engine.partial_result()
        assert partial.num_jobs == 1
        engine.drain()
        assert engine.finalize().num_jobs == 2


class TestIngest:
    def test_ingest_into_live_session(self, small_cluster):
        a = make_single_task_job(theta=5.0, arrival_time=0.0, job_id=1)
        engine = SimulationEngine(small_cluster, FIFOScheduler(), [a])
        engine.run_until(0.0)
        late = make_single_task_job(theta=5.0, arrival_time=3.0, job_id=2)
        engine.ingest(late)
        engine.drain()
        result = engine.finalize()
        assert result.num_jobs == 2
        assert late.finish_time == pytest.approx(8.0)

    def test_ingest_rejects_past_arrival(self, small_cluster):
        a = make_single_task_job(theta=5.0, arrival_time=10.0, job_id=1)
        engine = SimulationEngine(small_cluster, FIFOScheduler(), [a])
        engine.run_until(10.0)
        stale = make_single_task_job(theta=1.0, arrival_time=4.0, job_id=2)
        with pytest.raises(ValueError, match="precedes"):
            engine.ingest(stale)

    def test_ingest_rejects_duplicate_id(self, small_cluster):
        a = make_single_task_job(theta=5.0, arrival_time=0.0, job_id=1)
        engine = SimulationEngine(small_cluster, FIFOScheduler(), [a])
        dup = make_single_task_job(theta=5.0, arrival_time=1.0, job_id=1)
        with pytest.raises(ValueError, match="duplicate"):
            engine.ingest(dup)

    def test_ingest_rejects_infeasible(self, small_cluster):
        engine = SimulationEngine(
            small_cluster, FIFOScheduler(),
            [make_single_task_job(theta=1.0, job_id=1)],
        )
        huge = make_single_task_job(cpu=10_000.0, theta=1.0, job_id=2)
        with pytest.raises(ValueError, match="exceeds every server"):
            engine.ingest(huge)

    def test_ingest_restarts_idle_slotted_session(self, small_cluster):
        # Let the tick chain die on an empty queue, then ingest: the
        # session must revive and finish the late job.
        a = make_single_task_job(theta=2.0, arrival_time=0.0, job_id=1)
        engine = SimulationEngine(
            small_cluster, FIFOScheduler(), [a], schedule_interval=5.0
        )
        engine.drain()
        assert not engine.events
        late = make_single_task_job(theta=2.0, arrival_time=30.0, job_id=2)
        engine.ingest(late)
        engine.drain()
        result = engine.finalize()
        assert result.num_jobs == 2
        assert late.finish_time is not None


class TestArrivalSources:
    def test_static_source_equivalent_to_list(self):
        specs = trace_specs()
        r1 = mk_engine(jobs_from_specs(specs)).run()
        r2 = mk_engine(StaticSource(jobs_from_specs(specs))).run()
        assert r1.deterministic() == r2.deterministic()

    @pytest.mark.parametrize("slot", [0.0, 5.0])
    def test_generator_source_equivalent(self, slot):
        specs = trace_specs()
        r1 = mk_engine(jobs_from_specs(specs), schedule_interval=slot).run()
        r2 = mk_engine(
            GeneratorSource(iter(jobs_from_specs(specs))), schedule_interval=slot
        ).run()
        assert r1.deterministic() == r2.deterministic()

    @pytest.mark.parametrize("slot", [0.0, 5.0])
    def test_jsonl_source_equivalent(self, slot):
        specs = trace_specs()
        lines = [json.dumps(spec_to_dict(s)) for s in specs]
        r1 = mk_engine(jobs_from_specs(specs), schedule_interval=slot).run()
        r2 = mk_engine(JsonlSource(iter(lines)), schedule_interval=slot).run()
        assert r1.deterministic() == r2.deterministic()

    def test_streamed_equivalent_under_faults(self):
        specs = trace_specs()
        lines = [json.dumps(spec_to_dict(s)) for s in specs]
        kw = dict(fault_profile=FAULT_PROFILES["chaos"], schedule_interval=5.0,
                  record_trace=True)
        e1 = mk_engine(jobs_from_specs(specs), **kw)
        r1 = e1.run()
        e2 = mk_engine(JsonlSource(iter(lines)), **kw)
        r2 = e2.run()
        assert r1.deterministic() == r2.deterministic()
        assert list(e1.trace) == list(e2.trace)

    def test_generator_source_rejects_out_of_order(self, small_cluster):
        jobs = [
            make_single_task_job(theta=1.0, arrival_time=10.0, job_id=1),
            make_single_task_job(theta=1.0, arrival_time=5.0, job_id=2),
        ]
        src = GeneratorSource(iter(jobs))
        src.take()
        with pytest.raises(ValueError, match="out of order"):
            src.take()

    def test_jsonl_source_assigns_sequential_ids(self):
        specs = [replace(s, job_id=None) for s in trace_specs(n=3)]
        lines = [json.dumps(spec_to_dict(s)) for s in specs]
        src = JsonlSource(iter(lines))
        ids = []
        while (job := src.take()) is not None:
            ids.append(job.job_id)
        assert ids == [0, 1, 2]
        assert src.exhausted
        assert src.consumed == 3

    def test_jsonl_source_skips_blank_lines(self):
        specs = trace_specs(n=2)
        lines = [json.dumps(spec_to_dict(specs[0])), "", "  ",
                 json.dumps(spec_to_dict(specs[1]))]
        src = JsonlSource(iter(lines))
        assert src.take().job_id == 0
        assert src.take().job_id == 1
        assert src.take() is None


class TestSessionDriver:
    def test_session_run_matches_one_shot(self, tmp_path):
        specs = trace_specs()
        r1 = mk_engine(jobs_from_specs(specs)).run()
        session = SimulationSession(
            mk_engine(jobs_from_specs(specs)),
            checkpoint_path=tmp_path / "ckpt.bin",
            checkpoint_every=50.0,
        )
        r2 = session.run()
        assert r1.deterministic() == r2.deterministic()
        assert session.checkpoints_written > 0
        assert (tmp_path / "ckpt.bin").exists()

    def test_metrics_cadence(self):
        specs = trace_specs(n=6)
        calls = []
        session = SimulationSession(
            mk_engine(jobs_from_specs(specs)),
            on_metrics=lambda engine: calls.append(engine.now),
            metrics_every=25.0,
        )
        session.run()
        assert calls  # published at least the final snapshot
        # boundaries are non-decreasing and spaced >= cadence (bar the
        # forced final publication)
        assert all(b >= a for a, b in zip(calls, calls[1:]))


class TestBoundarySemantics:
    """Regression pins for the cadence/boundary bug sweep (PR 10): events
    stamped exactly at ``t`` must not leak through an exclusive
    ``run_until``, and the session cadence grid must neither double-fire
    nor skip when a cadence point coincides with an event time — even
    across a mid-run restore cut exactly at the boundary instant."""

    def test_run_until_exclusive_holds_events_stamped_at_bound(self, small_cluster):
        early = make_single_task_job(theta=20.0, arrival_time=0.0, job_id=1)
        at_bound = make_single_task_job(theta=20.0, arrival_time=5.0, job_id=2)
        engine = SimulationEngine(small_cluster, FIFOScheduler(), [early, at_bound])
        engine.run_until(5.0, inclusive=False)
        assert engine.now < 5.0
        assert 2 not in engine.active_jobs  # the t=5.0 arrival did not leak
        engine.run_until(5.0)
        assert engine.now == 5.0
        assert 2 in engine.active_jobs

    def test_first_cadence_boundary_strictly_after_clock(self, tmp_path):
        # 50 * 0.1 rounds to exactly 5.0, so the naive int(now//every)+1
        # grid landed *on* the clock instead of strictly after it.
        job = make_single_task_job(theta=1.0, arrival_time=5.0, job_id=1)
        engine = mk_engine([job])
        engine.run_until(5.0)
        assert engine.now == 5.0
        session = SimulationSession(
            engine, checkpoint_path=tmp_path / "c.bin", checkpoint_every=0.1
        )
        assert session._next_checkpoint > engine.now
        session2 = SimulationSession(engine, on_metrics=lambda e: None,
                                     metrics_every=0.1)
        assert session2._next_metrics > engine.now

    def test_cadence_grid_stable_across_restore_at_boundary_instant(self):
        from repro.sim.checkpoint import checkpoint_bytes, restore_bytes

        def jobs():
            return [
                make_single_task_job(theta=30.0, arrival_time=0.0, job_id=1),
                # the cut instant: event time == cadence point (50 * 0.1 == 5.0)
                make_single_task_job(theta=30.0, arrival_time=5.0, job_id=2),
                # an instant strictly inside (5.0, 5.1): a drifted or
                # non-strict grid fires here, the true grid must not
                make_single_task_job(theta=30.0, arrival_time=5.05, job_id=3),
                make_single_task_job(theta=30.0, arrival_time=9.5, job_id=4),
            ]

        uninterrupted = []
        SimulationSession(
            mk_engine(jobs()),
            on_metrics=lambda e: uninterrupted.append(e.now),
            metrics_every=0.1,
        ).run()

        engine = mk_engine(jobs())
        engine.run_until(5.0)
        assert engine.now == 5.0
        revived = restore_bytes(checkpoint_bytes(engine)[0])
        resumed = []
        SimulationSession(
            revived,
            on_metrics=lambda e: resumed.append(e.now),
            metrics_every=0.1,
        ).run()
        # the revived session re-derives the grid from the clock; every
        # publication after the cut must land on the same instants the
        # uninterrupted session used (bar the forced final publication,
        # present in both).
        assert resumed == [t for t in uninterrupted if t > 5.0]
