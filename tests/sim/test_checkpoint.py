"""Checkpoint/restore determinism (DESIGN.md §5.8).

The contract under test: checkpoint at t → restore → continue is
bit-identical to the uninterrupted run — result snapshot, decision
trace, replay journal, and metrics snapshot — including with fault
injection and observability enabled.
"""

import json
from dataclasses import replace

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.core.online import DollyMPScheduler
from repro.faults import FAULT_PROFILES
from repro.observability import Observability
from repro.resources import Resources
from repro.schedulers.fifo import FIFOScheduler
from repro.sim.checkpoint import (
    CHECKPOINT_FORMAT,
    checkpoint_bytes,
    checkpoint_info,
    load_checkpoint,
    restore_bytes,
    save_checkpoint,
)
from repro.sim.engine import SimulationEngine
from repro.workload.arrivals import JsonlSource
from repro.workload.google_trace import (
    GoogleTraceGenerator,
    jobs_from_specs,
    spec_to_dict,
)
from tests.conftest import make_single_task_job


def trace_specs(n=15, seed=13, gap=12.0):
    specs = GoogleTraceGenerator(seed=seed).generate(n, mean_interarrival=gap)
    return [replace(s, job_id=i) for i, s in enumerate(specs)]


def mk_engine(**kw):
    kw.setdefault("seed", 21)
    jobs = kw.pop("jobs", None)
    if jobs is None:
        jobs = jobs_from_specs(trace_specs())
    return SimulationEngine(
        homogeneous_cluster(16, Resources.of(16, 32)),
        DollyMPScheduler(max_clones=2),
        jobs,
        **kw,
    )


class TestRoundTrip:
    def test_restore_continue_bit_identical(self):
        r1 = mk_engine().run()
        e2 = mk_engine()
        e2.start()
        e2.run_until(60.0)
        payload, info = checkpoint_bytes(e2)
        assert info.sim_time == e2.now
        e3 = restore_bytes(payload)
        e3.drain()
        r3 = e3.finalize()
        assert r1.deterministic() == r3.deterministic()

    def test_restore_with_faults_observability_trace(self):
        kw = dict(
            fault_profile=FAULT_PROFILES["chaos"],
            schedule_interval=5.0,
            record_trace=True,
        )
        e1 = mk_engine(observability=Observability(), **kw)
        r1 = e1.run()
        e2 = mk_engine(observability=Observability(), **kw)
        e2.start()
        e2.run_until(60.0)
        e3 = restore_bytes(checkpoint_bytes(e2)[0])
        e3.drain()
        r3 = e3.finalize()
        assert r1.deterministic() == r3.deterministic()
        # decision journal: the replay input must be bit-identical
        assert list(e1.trace) == list(e3.trace)
        # metrics snapshot: identical exposition
        assert (
            e1.observability.registry.to_json()
            == e3.observability.registry.to_json()
        )
        assert (
            e1.observability.registry.to_prometheus()
            == e3.observability.registry.to_prometheus()
        )

    def test_double_checkpoint_same_state(self):
        # Checkpointing is read-only: a second checkpoint of the same
        # engine continues identically to the first.
        e = mk_engine()
        e.start()
        e.run_until(40.0)
        p1, _ = checkpoint_bytes(e)
        a = restore_bytes(p1)
        a.drain()
        ra = a.finalize()
        b = restore_bytes(checkpoint_bytes(e)[0])
        b.drain()
        rb = b.finalize()
        assert ra.deterministic() == rb.deterministic()
        # and the original still finishes to the same result
        e.drain()
        assert e.finalize().deterministic() == ra.deterministic()

    def test_checkpoint_restore_at_multiple_cuts(self):
        reference = mk_engine().run().deterministic()
        for cut in (0.0, 30.0, 90.0, 150.0):
            e = mk_engine()
            e.start()
            e.run_until(cut)
            revived = restore_bytes(checkpoint_bytes(e)[0])
            revived.drain()
            assert revived.finalize().deterministic() == reference, f"cut={cut}"


class TestJsonlRestore:
    def test_detach_and_reattach_stream(self):
        specs = trace_specs()
        lines = [json.dumps(spec_to_dict(s)) for s in specs]
        r1 = mk_engine(jobs=jobs_from_specs(specs)).run()

        e2 = mk_engine(jobs=JsonlSource(iter(lines)))
        e2.start()
        e2.run_until(60.0)
        payload, info = checkpoint_bytes(e2)
        assert info.arrivals_consumed > 0

        e3 = restore_bytes(payload)
        with pytest.raises(RuntimeError, match="detached"):
            # pulling before re-attach fails loudly (drain would pull
            # on the next arrival processing)
            e3.arrivals.take()
        e3.arrivals.attach(iter(lines), skip_consumed=True)
        e3.drain()
        assert e3.finalize().deterministic() == r1.deterministic()

    def test_attach_rejects_short_stream(self):
        specs = trace_specs(n=5)
        lines = [json.dumps(spec_to_dict(s)) for s in specs]
        e = mk_engine(jobs=JsonlSource(iter(lines)))
        e.run()
        revived = restore_bytes(checkpoint_bytes(e)[0])
        with pytest.raises(ValueError, match="fast-forwarding"):
            revived.arrivals.attach(iter(lines[:2]), skip_consumed=True)


class TestFiles:
    def test_file_round_trip_and_info(self, tmp_path, small_cluster):
        job = make_single_task_job(theta=20.0, job_id=1)
        engine = SimulationEngine(small_cluster, FIFOScheduler(), [job])
        engine.start()
        engine.run_until(0.0)
        path = tmp_path / "session.ckpt"
        info = save_checkpoint(engine, path)
        assert info.format == CHECKPOINT_FORMAT
        assert info.jobs_active == 1
        assert checkpoint_info(path).to_dict() == info.to_dict()
        revived = load_checkpoint(path)
        revived.drain()
        assert revived.finalize().num_jobs == 1

    def test_corrupted_file_rejected(self, tmp_path, small_cluster):
        job = make_single_task_job(theta=1.0, job_id=1)
        engine = SimulationEngine(small_cluster, FIFOScheduler(), [job])
        engine.start()
        path = tmp_path / "session.ckpt"
        save_checkpoint(engine, path)
        raw = bytearray(path.read_bytes())
        # flip a byte inside the pickled state
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises((ValueError, Exception)):
            load_checkpoint(path)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "not_a_ckpt.bin"
        import pickle

        path.write_bytes(pickle.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a repro-checkpoint"):
            load_checkpoint(path)


class TestJsonlEveryCutIdentity:
    """PR 10 bugfix pin: ``attach(skip_consumed=True)`` after restore
    must preserve replay identity at *every* cut of the stream —
    including cuts after end-of-stream, where the historical attach
    cleared the terminal exhaustion flag, kept ``workload_active()``
    true forever, and let the chaos fault-renewal chain run the drain
    away to ``max_time``."""

    def test_attach_keeps_exhausted_source_ended(self):
        import pickle

        specs = trace_specs(n=3)
        lines = [json.dumps(spec_to_dict(s)) for s in specs]
        src = JsonlSource(iter(lines))
        while src.take() is not None:
            pass
        assert src.exhausted
        revived = pickle.loads(pickle.dumps(src))
        assert revived.exhausted
        revived.attach(iter(lines), skip_consumed=True)
        assert revived.exhausted  # attach re-binds bytes, never un-ends
        assert revived.take() is None
        assert revived.consumed == len(lines)

    def test_restore_identity_at_every_line_index(self):
        specs = trace_specs(n=20, seed=5, gap=8.0)
        lines = [json.dumps(spec_to_dict(s)) for s in specs]

        def mk(jobs):
            return mk_engine(
                jobs=jobs,
                fault_profile=FAULT_PROFILES["chaos"],
                churn_seed=3,
            )

        ref = mk(JsonlSource(iter(lines))).run().deterministic()
        for cut in range(len(lines) + 1):
            engine = mk(JsonlSource(iter(lines)))
            engine.start()
            while engine.arrivals.consumed < cut and engine.events:
                engine.step()
            revived = restore_bytes(checkpoint_bytes(engine)[0])
            # a runaway leg (the historical bug) dies here instead of
            # hanging: the uninterrupted run ends well before this bound
            revived.max_time = ref.simulated_time + 10_000.0
            revived.arrivals.attach(iter(lines), skip_consumed=True)
            revived.drain()
            assert revived.finalize().deterministic() == ref, f"cut at line {cut}"
