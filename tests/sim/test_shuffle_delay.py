"""Engine tests for phase start delays (the shuffle/data-transfer model)."""

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.core.online import DollyMPScheduler
from repro.resources import Resources
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.sim.engine import SimulationEngine
from repro.workload.distributions import Deterministic
from repro.workload.job import Job
from repro.workload.mapreduce import mapreduce_job
from repro.workload.phase import Phase


def delayed_chain(delay: float, theta: float = 10.0) -> Job:
    phases = [
        Phase(0, 1, Resources.of(1, 1), Deterministic(theta)),
        Phase(
            1, 1, Resources.of(1, 1), Deterministic(theta),
            parents=(0,), start_delay=delay,
        ),
    ]
    return Job(phases)


class TestPhaseReadyTime:
    def test_root_phase_ready_at_arrival(self):
        job = delayed_chain(5.0)
        assert job.phase_ready_time(job.phases[0]) == job.arrival_time

    def test_child_none_until_parent_done(self):
        job = delayed_chain(5.0)
        assert job.phase_ready_time(job.phases[1]) is None

    def test_time_gating(self):
        job = delayed_chain(5.0)
        for t in job.phases[0].tasks:
            t.complete(10.0)
        assert job.phase_ready_time(job.phases[1]) == 15.0
        assert not job.phase_ready(job.phases[1], 12.0)
        assert job.phase_ready(job.phases[1], 15.0)
        # Without a clock the gate is dependency-only (legacy semantics).
        assert job.phase_ready(job.phases[1])

    def test_ready_phases_respects_clock(self):
        job = delayed_chain(5.0)
        for t in job.phases[0].tasks:
            t.complete(10.0)
        assert [p.index for p in job.ready_phases(12.0)] == []
        assert [p.index for p in job.ready_phases(15.0)] == [1]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Phase(0, 1, Resources.of(1, 1), Deterministic(1.0), start_delay=-1.0)


@pytest.mark.parametrize(
    "make_sched",
    [FIFOScheduler, TetrisScheduler, lambda: DollyMPScheduler(max_clones=1)],
)
class TestEngineHonorsDelay:
    def test_event_driven(self, make_sched):
        cluster = homogeneous_cluster(1, Resources.of(8, 8))
        job = delayed_chain(delay=7.0, theta=10.0)
        engine = SimulationEngine(cluster, make_sched(), [job], max_time=1e4)
        engine.run()
        # Phase 0: [0, 10); shuffle until 17; phase 1: [17, 27).
        assert job.phases[0].finish_time() == pytest.approx(10.0)
        assert job.phases[1].tasks[0].start_time == pytest.approx(17.0)
        assert job.finish_time == pytest.approx(27.0)

    def test_slotted(self, make_sched):
        cluster = homogeneous_cluster(1, Resources.of(8, 8))
        job = delayed_chain(delay=7.0, theta=10.0)
        engine = SimulationEngine(
            cluster, make_sched(), [job], schedule_interval=5.0, max_time=1e4
        )
        engine.run()
        # Ready at 17, first slot after that is 20.
        assert job.phases[1].tasks[0].start_time == pytest.approx(20.0)


class TestMapReduceShuffle:
    def test_builder_wires_delay(self):
        job = mapreduce_job(
            num_map=2, num_reduce=1, map_theta=5.0, reduce_theta=5.0,
            shuffle_delay=3.5,
        )
        assert job.phases[1].start_delay == 3.5
        assert job.phases[0].start_delay == 0.0

    def test_zero_delay_matches_legacy_timing(self):
        cluster = homogeneous_cluster(1, Resources.of(8, 8))
        job = delayed_chain(delay=0.0, theta=10.0)
        SimulationEngine(cluster, FIFOScheduler(), [job], max_time=1e4).run()
        assert job.finish_time == pytest.approx(20.0)
