"""Unit tests for the event queue."""

import pytest

from repro.sim.events import EventKind, EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(5.0, EventKind.JOB_ARRIVAL)
        q.push(1.0, EventKind.JOB_ARRIVAL)
        q.push(3.0, EventKind.JOB_ARRIVAL)
        assert [q.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_kind_priority_at_equal_time(self):
        """Finishes before arrivals before ticks at the same timestamp."""
        q = EventQueue()
        q.push(2.0, EventKind.SCHEDULE_TICK)
        q.push(2.0, EventKind.JOB_ARRIVAL)
        q.push(2.0, EventKind.COPY_FINISH)
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [
            EventKind.COPY_FINISH,
            EventKind.JOB_ARRIVAL,
            EventKind.SCHEDULE_TICK,
        ]

    def test_fifo_within_same_time_and_kind(self):
        q = EventQueue()
        a = q.push(1.0, EventKind.COPY_FINISH, "a")
        b = q.push(1.0, EventKind.COPY_FINISH, "b")
        assert q.pop().payload == "a"
        assert q.pop().payload == "b"
        assert a.seq < b.seq

    def test_peek_does_not_pop(self):
        q = EventQueue()
        q.push(1.0, EventKind.JOB_ARRIVAL)
        assert q.peek() is not None
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.JOB_ARRIVAL)

    def test_bool_and_len(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, EventKind.JOB_ARRIVAL)
        assert q and len(q) == 1
