"""Unit tests for the action protocol (DESIGN.md §5.3).

Pins the choke-point semantics every replay depends on: structured
``InvalidAction`` errors (kill-after-finish, kill-after-kill, all launch
validations), atomicity of rejected actions (no RNG draw, no state
change, no journal entry), decision journaling metadata, the bounded
trace, and the JSONL export format.
"""

import json

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.resources import Resources
from repro.schedulers.base import Scheduler
from repro.sim.actions import (
    DEFAULT_TRACE_MAXLEN,
    TRACE_SCHEMA,
    Decision,
    DecisionTrace,
    InvalidAction,
    Kill,
    Launch,
    TraceLimitExceeded,
)
from repro.sim.engine import SimulationEngine
from repro.sim.runner import run_recorded
from tests.conftest import make_chain_job, make_single_task_job


class NullScheduler(Scheduler):
    """Never launches anything — lets tests drive apply() by hand."""

    name = "null"

    def schedule(self, view) -> None:
        pass


def make_engine(jobs, **kw):
    cluster = kw.pop("cluster", None) or homogeneous_cluster(2, Resources.of(4, 8))
    return SimulationEngine(cluster, NullScheduler(), jobs, **kw)


def activate(engine, job):
    """Register an arrival without running the event loop."""
    engine.active_jobs[job.job_id] = job


# ======================================================================
# Kill semantics
# ======================================================================
class TestKillSemantics:
    def _finished_copy(self, record_trace=False):
        job = make_single_task_job(theta=10.0, job_id=0)
        engine = make_engine([job], record_trace=record_trace)
        activate(engine, job)
        task = job.phases[0].tasks[0]
        copy = engine.apply(Launch(task, engine.cluster[0]))
        engine.now = copy.finish_time
        engine._process_copy_finish(copy)
        return engine, task, copy

    def test_kill_finished_copy_raises_structured(self):
        engine, task, copy = self._finished_copy()
        with pytest.raises(InvalidAction) as excinfo:
            engine.apply(Kill(copy))
        err = excinfo.value
        assert isinstance(err, RuntimeError)  # back-compat contract
        assert err.kind == "kill"
        assert err.task_uid == task.uid
        assert err.copy_index == 0
        assert err.server_id == copy.server_id
        assert err.time == engine.now
        # The message names the copy and the server.
        assert "already-finished" in str(err)
        assert f"server {copy.server_id}" in str(err)

    def test_kill_killed_copy_raises_structured(self):
        job = make_single_task_job(theta=10.0, job_id=0)
        engine = make_engine([job])
        activate(engine, job)
        task = job.phases[0].tasks[0]
        engine.apply(Launch(task, engine.cluster[0]))
        clone = engine.apply(Launch(task, engine.cluster[1], clone=True))
        engine.apply(Kill(clone))  # first kill: fine
        with pytest.raises(InvalidAction) as excinfo:
            engine.apply(Kill(clone))
        err = excinfo.value
        assert err.copy_index == 1
        assert err.server_id == clone.server_id
        assert "already-killed" in str(err)

    def test_rejected_kill_leaves_state_untouched(self):
        engine, task, copy = self._finished_copy(record_trace=True)
        trace_len = len(engine.trace)
        occupancy = engine.clone_occupancy
        available = engine.cluster[copy.server_id].available
        with pytest.raises(InvalidAction):
            engine.apply(Kill(copy))
        assert len(engine.trace) == trace_len
        assert engine.clone_occupancy == occupancy
        assert engine.cluster[copy.server_id].available == available


# ======================================================================
# Launch validation
# ======================================================================
class TestLaunchValidation:
    def test_inactive_job_rejected(self):
        job = make_single_task_job(theta=10.0, job_id=7)
        engine = make_engine([job])  # never activated
        task = job.phases[0].tasks[0]
        with pytest.raises(InvalidAction, match="not active") as excinfo:
            engine.apply(Launch(task, engine.cluster[0]))
        assert excinfo.value.kind == "launch"
        assert excinfo.value.task_uid == task.uid
        assert excinfo.value.server_id == 0

    def test_gated_phase_rejected(self):
        job = make_chain_job(2, 1, theta=10.0, job_id=0)
        engine = make_engine([job])
        activate(engine, job)
        blocked = job.phases[1].tasks[0]
        with pytest.raises(InvalidAction, match="Eq. 7"):
            engine.apply(Launch(blocked, engine.cluster[0]))

    def test_copy_cap_rejected(self):
        job = make_single_task_job(theta=10.0, job_id=0)
        engine = make_engine([job], max_copies_per_task=1)
        activate(engine, job)
        task = job.phases[0].tasks[0]
        engine.apply(Launch(task, engine.cluster[0]))
        with pytest.raises(InvalidAction, match="copy cap"):
            engine.apply(Launch(task, engine.cluster[1], clone=True))

    def test_overfull_server_rejected_atomically(self):
        """A rejected launch must not draw from the duration RNG, touch
        occupancy, or land in the journal — bit-identical engine state."""
        job = make_single_task_job(cpu=3.0, mem=3.0, theta=10.0, job_id=0)
        engine = make_engine([job], record_trace=True)
        activate(engine, job)
        task = job.phases[0].tasks[0]
        server = engine.cluster[0]
        engine.apply(Launch(task, server))  # 3 of 4 cores used
        rng_state = engine.duration_rng.bit_generator.state
        copies = engine.copies_launched
        trace_len = len(engine.trace)
        available = server.available
        with pytest.raises(InvalidAction, match="cannot fit") as excinfo:
            engine.apply(Launch(task, server, clone=True))
        assert excinfo.value.server_id == server.server_id
        assert engine.duration_rng.bit_generator.state == rng_state
        assert engine.copies_launched == copies
        assert len(engine.trace) == trace_len
        assert server.available == available
        assert len(task.copies) == 1

    def test_non_action_rejected(self):
        job = make_single_task_job(theta=10.0)
        engine = make_engine([job])
        with pytest.raises(TypeError, match="not an action"):
            engine.apply(object())


# ======================================================================
# Decision journaling
# ======================================================================
class TestDecisionJournal:
    def test_manual_launch_and_kill_are_journaled(self):
        job = make_single_task_job(theta=10.0, job_id=3)
        engine = make_engine([job], record_trace=True)
        activate(engine, job)
        task = job.phases[0].tasks[0]
        engine.apply(Launch(task, engine.cluster[0]))
        clone = engine.apply(Launch(task, engine.cluster[1], clone=True))
        engine.apply(Kill(clone))
        kinds = [d.kind for d in engine.trace]
        assert kinds == ["launch", "launch", "kill"]
        launch0, launch1, kill = engine.trace.decisions
        assert launch0.task_uid == task.uid
        assert not launch0.clone and launch1.clone
        assert kill.copy_index == 1
        assert kill.server_id == 1
        assert [d.seq for d in engine.trace] == [0, 1, 2]
        assert all(d.policy == "null" for d in engine.trace)

    def test_recorded_run_metadata(self, small_cluster):
        from repro.schedulers.fifo import FIFOScheduler

        jobs = [
            make_single_task_job(theta=10.0, arrival_time=5.0 * i, job_id=i)
            for i in range(4)
        ]
        result, trace = run_recorded(small_cluster, FIFOScheduler(), jobs, seed=3)
        assert len(trace) == 4
        assert [d.seq for d in trace] == list(range(4))
        assert all(d.policy == result.scheduler_name for d in trace)
        assert all(
            d.cause in {"job_arrival", "task_finish", "job_finish", "schedule"}
            for d in trace
        )
        points = [d.point for d in trace]
        assert points == sorted(points)  # entry points open in order
        times = [d.time for d in trace]
        assert times == sorted(times)
        assert trace.meta["policy"] == result.scheduler_name
        assert trace.meta["seed"] == 3
        assert trace.meta["num_decisions"] == 4

    def test_no_trace_by_default(self, small_cluster):
        from repro.schedulers.fifo import FIFOScheduler

        job = make_single_task_job(theta=10.0)
        engine = SimulationEngine(small_cluster, FIFOScheduler(), [job])
        assert engine.trace is None
        engine.run()  # recording off: no journaling overhead, no errors


# ======================================================================
# The bounded trace and its JSONL format
# ======================================================================
def _decision(seq, **over):
    base = dict(
        seq=seq,
        time=1.5 * seq,
        point=seq + 1,
        cause="schedule",
        policy="fifo",
        kind="launch",
        job_id=0,
        phase_index=0,
        task_index=seq,
        server_id=2,
    )
    base.update(over)
    return Decision(**base)


class TestDecisionTrace:
    def test_bound_is_a_guard_rail_not_a_ring(self):
        trace = DecisionTrace(maxlen=2)
        trace.append(_decision(0))
        trace.append(_decision(1))
        with pytest.raises(TraceLimitExceeded) as excinfo:
            trace.append(_decision(2))
        assert excinfo.value.maxlen == 2
        assert len(trace) == 2  # nothing was dropped

    def test_engine_surfaces_trace_limit(self):
        job = make_single_task_job(theta=10.0, job_id=0)
        engine = make_engine([job], record_trace=True, trace_maxlen=1)
        activate(engine, job)
        task = job.phases[0].tasks[0]
        engine.apply(Launch(task, engine.cluster[0]))
        with pytest.raises(TraceLimitExceeded):
            engine.apply(Launch(task, engine.cluster[1], clone=True))

    def test_invalid_maxlen(self):
        with pytest.raises(ValueError):
            DecisionTrace(maxlen=0)

    def test_jsonl_roundtrip(self, tmp_path):
        trace = DecisionTrace(maxlen=100, meta={"policy": "fifo", "seed": 9})
        trace.append(_decision(0))
        trace.append(_decision(1, kind="kill", copy_index=1, clone=True))
        path = tmp_path / "trace.jsonl"
        trace.dump_jsonl(path)
        loaded = DecisionTrace.load_jsonl(path)
        assert loaded.decisions == trace.decisions
        assert loaded.meta == trace.meta
        assert loaded.maxlen == 100

    def test_jsonl_header_is_self_describing(self, tmp_path):
        trace = DecisionTrace(meta={"seed": 1})
        trace.append(_decision(0))
        path = tmp_path / "trace.jsonl"
        trace.dump_jsonl(path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == TRACE_SCHEMA
        assert header["maxlen"] == DEFAULT_TRACE_MAXLEN
        assert header["meta"] == {"seed": 1}

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "other/v9"}\n')
        with pytest.raises(ValueError, match="unknown trace schema"):
            DecisionTrace.load_jsonl(path)

    def test_load_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty trace file"):
            DecisionTrace.load_jsonl(path)

    def test_decision_task_uid(self):
        d = _decision(4, job_id=2, phase_index=1)
        assert d.task_uid == (2, 1, 4)
