"""Property-based tests (hypothesis) for shard-invariant engine laws.

Three invariants must hold for *any* shard assignment — contiguous,
random, or degenerate — under chaos fault churn (DESIGN.md §5.10):

* **Lifetime copy cap** — a task never accumulates more than
  ``max_copies_per_task`` scheduler-chosen copies; fault-killed copies
  are relaunch credits, not cap consumption.
* **Clone-budget bitwise-zero snap** — whenever no clone is live, the
  δ-budget occupancy is *exactly* ``Resources(0.0, 0.0)``, not merely
  small: repeated add/subtract rounding must never leak budget.
* **Capacity conservation** — per up server, ``allocated + available``
  reconstructs capacity with the engine's own rounding, allocation
  stays within capacity, an idle server's allocation snaps to bitwise
  zero, and the SoA mirror holds the same floats as the servers.

On top of the invariants, every random-assignment run must land on the
same result as the dense K=1 engine — shard maps are a partition of
*event routing*, never of semantics.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.core.online import DollyMPScheduler
from repro.faults.profile import FAULT_PROFILES
from repro.resources import Resources
from repro.sim.engine import SimulationEngine
from repro.sim.shard import ShardMap
from repro.workload.mapreduce import pagerank_job, wordcount_job

NUM_SERVERS = 12
MAX_COPIES = 3

#: K ∈ {1, 2, 7}: the degenerate map, an even split, and a prime that
#: cannot divide 12 servers evenly (some shards end up empty under
#: random assignment — the merge barrier must not care).
shard_counts = st.sampled_from([1, 2, 7])

#: A fully random server→shard map (drawn per example, paired with K).
assignments = shard_counts.flatmap(
    lambda k: st.tuples(
        st.just(k),
        st.lists(
            st.integers(min_value=0, max_value=k - 1),
            min_size=NUM_SERVERS,
            max_size=NUM_SERVERS,
        ),
    )
)


def _make_jobs(scale: float, gap: float):
    """Deterministic workload with explicit job ids, so two engines
    built in one process see identical jobs (no global id counter)."""
    jobs = []
    for i in range(6):
        if i % 2 == 0:
            jobs.append(wordcount_job(scale, arrival_time=gap * i, job_id=i))
        else:
            jobs.append(pagerank_job(scale / 4.0, arrival_time=gap * i, job_id=i))
    return jobs


def _make_engine(seed: int, scale: float, gap: float, shard_map=None):
    return SimulationEngine(
        homogeneous_cluster(NUM_SERVERS),
        DollyMPScheduler(max_clones=2),
        _make_jobs(scale, gap),
        seed=seed,
        schedule_interval=5.0,
        max_time=1e9,
        max_copies_per_task=MAX_COPIES,
        fault_profile=FAULT_PROFILES["chaos"],
        shard_map=shard_map,
    )


def _all_tasks(engine):
    for job in engine.jobs:
        for phase in job.phases:
            yield from phase.tasks


def _check_invariants(engine) -> None:
    # Lifetime copy cap: fault losses are credits, not consumption.
    for task in _all_tasks(engine):
        assert len(task.copies) - task.fault_losses <= MAX_COPIES, (
            f"task {task.uid}: {len(task.copies)} copies with "
            f"{task.fault_losses} fault losses exceeds cap {MAX_COPIES}"
        )

    # Clone-budget bitwise-zero snap.
    assert engine.clone_occupancy.cpu >= 0.0
    assert engine.clone_occupancy.mem >= 0.0
    if engine._live_clone_count == 0:
        assert engine.clone_occupancy == Resources(0.0, 0.0), (
            f"no live clones but occupancy {engine.clone_occupancy!r} "
            "did not snap to bitwise zero"
        )

    # Capacity conservation + mirror exactness.
    mirror = engine.cluster.mirror
    for server in engine.cluster:
        i = server.server_id
        alloc, avail, cap = server.allocated, server.available, server.capacity
        running = server.running_copies
        if server.up:
            # available is derived as max(cap - alloc, 0) — reconstruct
            # with the same expression, demanding float equality.
            assert avail.cpu == max(cap.cpu - alloc.cpu, 0.0)
            assert avail.mem == max(cap.mem - alloc.mem, 0.0)
            assert 0.0 <= alloc.cpu <= cap.cpu + 1e-9
            assert 0.0 <= alloc.mem <= cap.mem + 1e-9
            if not running:
                assert alloc == Resources(0.0, 0.0), (
                    f"server {i}: idle but allocation {alloc!r} did not "
                    "snap to bitwise zero"
                )
            else:
                assert math.isclose(
                    alloc.cpu, sum(c.task.demand.cpu for c in running), rel_tol=1e-9
                )
                assert math.isclose(
                    alloc.mem, sum(c.task.demand.mem for c in running), rel_tol=1e-9
                )
        else:
            assert not running, f"server {i}: down but hosting copies"
        assert bool(mirror.up[i]) == server.up
        assert mirror.avail_cpu[i] == avail.cpu
        assert mirror.avail_mem[i] == avail.mem


class TestShardAssignmentProperties:
    @given(
        km=assignments,
        seed=st.integers(min_value=0, max_value=2**16),
        scale=st.sampled_from([1.0, 2.0, 4.0]),
        gap=st.sampled_from([5.0, 20.0]),
    )
    @settings(max_examples=20, deadline=None)
    def test_invariants_and_k1_identity_under_chaos(self, km, seed, scale, gap):
        k, assignment = km
        shard_map = ShardMap(NUM_SERVERS, k, assignment=assignment)
        engine = _make_engine(seed, scale, gap, shard_map=shard_map)

        # Step through the run, checking invariants at mid-flight
        # instants (after the run everything is idle and the capacity
        # law would be vacuous).
        for t in (10.0, 35.0, 80.0):
            engine.run_until(t)
            _check_invariants(engine)
        result = engine.run()
        _check_invariants(engine)
        assert engine._live_clone_count == 0
        assert len(result.records) == 6  # chaos must not strand jobs
        assert result.faults_injected > 0  # ...and chaos must actually fire

        # A shard map routes events; it must never change the outcome.
        baseline = _make_engine(seed, scale, gap).run()
        assert result.total_flowtime == baseline.total_flowtime
        assert result.copies_launched == baseline.copies_launched
        assert result.simulated_time == baseline.simulated_time
        assert result.faults_injected == baseline.faults_injected
