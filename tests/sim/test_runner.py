"""Unit tests for the high-level runner API."""

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.resources import Resources
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.srpt import SRPTScheduler
from repro.sim.runner import compare_schedulers, run_simulation
from tests.conftest import make_single_task_job


class TestRunSimulation:
    def test_returns_result(self):
        cluster = homogeneous_cluster(1, Resources.of(4, 8))
        res = run_simulation(cluster, FIFOScheduler(), [make_single_task_job()])
        assert res.num_jobs == 1
        assert res.scheduler_name == "FIFO"

    def test_seed_reproducibility(self):
        def go():
            return run_simulation(
                homogeneous_cluster(1, Resources.of(4, 8)),
                FIFOScheduler(),
                [make_single_task_job(sigma=5.0, job_id=1)],
                seed=9,
            ).records[0].finish_time

        assert go() == go()


class TestCompareSchedulers:
    def test_runs_each_policy_on_fresh_workload(self):
        results = compare_schedulers(
            lambda: homogeneous_cluster(1, Resources.of(4, 8)),
            lambda: [
                make_single_task_job(theta=10.0, job_id=1),
                make_single_task_job(theta=1.0, arrival_time=0.0, job_id=2),
            ],
            {
                "fifo": FIFOScheduler,
                "srpt": SRPTScheduler,
            },
            seed=1,
        )
        assert set(results) == {"fifo", "srpt"}
        # SRPT should not lose to FIFO on this instance.
        assert results["srpt"].total_flowtime <= results["fifo"].total_flowtime

    def test_same_seed_same_durations(self):
        """Both policies see identical duration draws where placements
        coincide: a single job placed identically finishes identically."""
        results = compare_schedulers(
            lambda: homogeneous_cluster(1, Resources.of(4, 8)),
            lambda: [make_single_task_job(sigma=5.0, job_id=1)],
            {"a": FIFOScheduler, "b": SRPTScheduler},
            seed=4,
        )
        assert results["a"].records[0].finish_time == pytest.approx(
            results["b"].records[0].finish_time
        )


# Module-level factories: picklable, so workers=N exercises the
# ProcessPoolExecutor path rather than the thread fallback.
def _mk_cluster():
    return homogeneous_cluster(2, Resources.of(4, 8))


def _mk_jobs():
    return [
        make_single_task_job(theta=10.0, sigma=4.0, job_id=1),
        make_single_task_job(theta=2.0, sigma=1.0, arrival_time=1.0, job_id=2),
        make_single_task_job(theta=6.0, sigma=2.0, arrival_time=2.0, job_id=3),
    ]


class TestParallelSweeps:
    SCHEDS = {"fifo": FIFOScheduler, "srpt": SRPTScheduler}

    def test_seeds_sweep_shape(self):
        results = compare_schedulers(
            _mk_cluster, _mk_jobs, self.SCHEDS, seeds=[1, 2, 3]
        )
        assert set(results) == {"fifo", "srpt"}
        for per_seed in results.values():
            assert set(per_seed) == {1, 2, 3}

    def test_parallel_matches_serial(self):
        serial = compare_schedulers(_mk_cluster, _mk_jobs, self.SCHEDS, seeds=[1, 2])
        par = compare_schedulers(
            _mk_cluster, _mk_jobs, self.SCHEDS, seeds=[1, 2], workers=2
        )
        for name in self.SCHEDS:
            for s in (1, 2):
                assert par[name][s].total_flowtime == serial[name][s].total_flowtime
                assert par[name][s].makespan == serial[name][s].makespan

    def test_parallel_with_lambdas_falls_back_to_threads(self):
        # Unpicklable factories must still produce correct results.
        serial = compare_schedulers(_mk_cluster, _mk_jobs, self.SCHEDS, seed=5)
        par = compare_schedulers(
            lambda: _mk_cluster(),
            lambda: _mk_jobs(),
            self.SCHEDS,
            seed=5,
            seeds=[5],
            workers=2,
        )
        for name in self.SCHEDS:
            assert par[name][5].total_flowtime == serial[name].total_flowtime

    def test_single_seed_keeps_historical_shape(self):
        results = compare_schedulers(
            _mk_cluster, _mk_jobs, self.SCHEDS, seed=7, workers=2
        )
        # seeds=None: flat {name: result} even when run in parallel.
        assert results["fifo"].num_jobs == 3

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            compare_schedulers(_mk_cluster, _mk_jobs, self.SCHEDS, seeds=[])
