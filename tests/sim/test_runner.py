"""Unit tests for the high-level runner API."""

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.resources import Resources
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.srpt import SRPTScheduler
from repro.sim.runner import compare_schedulers, run_simulation
from tests.conftest import make_single_task_job


class TestRunSimulation:
    def test_returns_result(self):
        cluster = homogeneous_cluster(1, Resources.of(4, 8))
        res = run_simulation(cluster, FIFOScheduler(), [make_single_task_job()])
        assert res.num_jobs == 1
        assert res.scheduler_name == "FIFO"

    def test_seed_reproducibility(self):
        def go():
            return run_simulation(
                homogeneous_cluster(1, Resources.of(4, 8)),
                FIFOScheduler(),
                [make_single_task_job(sigma=5.0, job_id=1)],
                seed=9,
            ).records[0].finish_time

        assert go() == go()


class TestCompareSchedulers:
    def test_runs_each_policy_on_fresh_workload(self):
        results = compare_schedulers(
            lambda: homogeneous_cluster(1, Resources.of(4, 8)),
            lambda: [
                make_single_task_job(theta=10.0, job_id=1),
                make_single_task_job(theta=1.0, arrival_time=0.0, job_id=2),
            ],
            {
                "fifo": FIFOScheduler,
                "srpt": SRPTScheduler,
            },
            seed=1,
        )
        assert set(results) == {"fifo", "srpt"}
        # SRPT should not lose to FIFO on this instance.
        assert results["srpt"].total_flowtime <= results["fifo"].total_flowtime

    def test_same_seed_same_durations(self):
        """Both policies see identical duration draws where placements
        coincide: a single job placed identically finishes identically."""
        results = compare_schedulers(
            lambda: homogeneous_cluster(1, Resources.of(4, 8)),
            lambda: [make_single_task_job(sigma=5.0, job_id=1)],
            {"a": FIFOScheduler, "b": SRPTScheduler},
            seed=4,
        )
        assert results["a"].records[0].finish_time == pytest.approx(
            results["b"].records[0].finish_time
        )
