"""Edge-case tests for the simulation engine."""

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.resources import Resources
from repro.schedulers.base import Scheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.sim.engine import SimulationEngine
from repro.workload.distributions import Deterministic
from repro.workload.job import Job
from repro.workload.phase import Phase
from repro.workload.task import TaskState
from tests.conftest import make_chain_job, make_single_task_job


class CloneEverywhere(Scheduler):
    """Launch the task plus a clone on every other server immediately."""

    name = "clone-everywhere"

    def schedule(self, view):
        for job in view.active_jobs:
            for task in job.ready_tasks(view.time):
                for server in view.cluster:
                    if server.can_fit(task.demand):
                        view.launch(task, server)


class TestSimultaneousFinishes:
    def test_identical_copies_tie_cleanly(self):
        """Two deterministic copies finish at the same instant: exactly
        one wins, the other is killed at zero-ish residual duration."""
        cluster = homogeneous_cluster(2, Resources.of(1, 1), slowdown=1.0)
        job = make_single_task_job(cpu=1.0, mem=1.0, theta=10.0)
        engine = SimulationEngine(cluster, CloneEverywhere(), [job], max_time=1e4)
        engine.run()
        task = job.phases[0].tasks[0]
        assert task.state is TaskState.FINISHED
        assert sum(1 for c in task.copies if c.finished) == 1
        assert sum(1 for c in task.copies if c.killed) == 1
        assert job.finish_time == pytest.approx(10.0)

    def test_many_tasks_finish_same_instant(self):
        """A whole phase of deterministic tasks completes in one event
        batch; the dependent phase starts exactly then."""
        cluster = homogeneous_cluster(2, Resources.of(8, 8))
        job = make_chain_job(2, 8, theta=5.0)
        SimulationEngine(cluster, FIFOScheduler(), [job], max_time=1e4).run()
        assert job.phases[0].finish_time() == pytest.approx(5.0)
        starts = {t.start_time for t in job.phases[1].tasks}
        assert starts == {5.0}


class TestArrivalEdges:
    def test_simultaneous_arrivals(self):
        cluster = homogeneous_cluster(1, Resources.of(2, 2))
        jobs = [
            make_single_task_job(cpu=1.0, mem=1.0, theta=5.0, job_id=k)
            for k in range(4)
        ]
        engine = SimulationEngine(cluster, FIFOScheduler(), jobs, max_time=1e4)
        result = engine.run()
        assert result.num_jobs == 4
        # Two run immediately, two wait one service round.
        finishes = sorted(r.finish_time for r in result.records)
        assert finishes == pytest.approx([5.0, 5.0, 10.0, 10.0])

    def test_arrival_during_backlog(self):
        cluster = homogeneous_cluster(1, Resources.of(1, 10))
        first = make_single_task_job(cpu=1.0, theta=100.0, job_id=1)
        late = make_single_task_job(cpu=1.0, theta=1.0, arrival_time=50.0, job_id=2)
        engine = SimulationEngine(cluster, FIFOScheduler(), [first, late], max_time=1e4)
        result = engine.run()
        rec = {r.job_id: r for r in result.records}
        assert rec[2].wait_time == pytest.approx(50.0)


class TestViewGuards:
    def test_launch_for_inactive_job_rejected(self):
        cluster = homogeneous_cluster(1, Resources.of(8, 8))
        early = make_single_task_job(theta=1.0, job_id=1)
        future = make_single_task_job(theta=1.0, arrival_time=500.0, job_id=2)

        class Eager(Scheduler):
            name = "eager"

            def schedule(self, view):
                # Try to launch the not-yet-arrived job's task.
                task = future.phases[0].tasks[0]
                if task.state is TaskState.PENDING:
                    view.launch(task, view.cluster[0])

        engine = SimulationEngine(cluster, Eager(), [early, future], max_time=1e4)
        with pytest.raises(RuntimeError, match="not active"):
            engine.run()

    def test_launch_on_finished_task_rejected(self):
        cluster = homogeneous_cluster(2, Resources.of(8, 8))
        job = make_single_task_job(theta=5.0)

        class Necromancer(Scheduler):
            name = "necromancer"

            def __init__(self):
                self.fired = False

            def schedule(self, view):
                task = job.phases[0].tasks[0]
                if task.state is TaskState.PENDING:
                    view.launch(task, view.cluster[0])

            def on_task_finish(self, task, view):
                view.launch(task, view.cluster[1])  # too late

        engine = SimulationEngine(cluster, Necromancer(), [job], max_time=1e4)
        with pytest.raises(RuntimeError, match="already finished"):
            engine.run()

    def test_scheduler_kill_is_permitted_and_safe(self):
        """A policy may kill its own clone (e.g. delay-assignment); the
        task still completes via the surviving copy."""
        cluster = homogeneous_cluster(2, Resources.of(1, 1))
        job = make_single_task_job(cpu=1.0, mem=1.0, theta=10.0)

        class LaunchThenRegret(Scheduler):
            name = "regret"

            def __init__(self):
                self.killed_once = False

            def schedule(self, view):
                task = job.phases[0].tasks[0]
                if task.state is TaskState.PENDING:
                    view.launch(task, view.cluster[0])
                    clone = view.launch(task, view.cluster[1], clone=True)
                    view.kill(clone)
                    self.killed_once = True

        sched = LaunchThenRegret()
        engine = SimulationEngine(cluster, sched, [job], max_time=1e4)
        result = engine.run()
        assert sched.killed_once
        assert result.num_jobs == 1
        assert cluster[1].allocated.is_zero()


class TestZeroAndTinyDurations:
    def test_tiny_theta_completes(self):
        cluster = homogeneous_cluster(1, Resources.of(8, 8))
        job = make_single_task_job(theta=1e-6)
        result = SimulationEngine(cluster, FIFOScheduler(), [job], max_time=10).run()
        assert result.num_jobs == 1

    def test_mixed_scales(self):
        cluster = homogeneous_cluster(1, Resources.of(4, 8))
        jobs = [
            make_single_task_job(theta=1e-3, job_id=1),
            make_single_task_job(theta=1e3, job_id=2),
        ]
        result = SimulationEngine(cluster, FIFOScheduler(), jobs, max_time=1e5).run()
        assert result.num_jobs == 2


class TestResultIntegrity:
    def test_records_sorted_and_complete(self):
        cluster = homogeneous_cluster(2, Resources.of(8, 8))
        jobs = [
            make_single_task_job(theta=3.0, arrival_time=float(9 - k), job_id=k)
            for k in range(6)
        ]
        result = SimulationEngine(cluster, FIFOScheduler(), jobs, max_time=1e4).run()
        ids = [r.job_id for r in result.records]
        assert ids == sorted(ids) == list(range(6))
