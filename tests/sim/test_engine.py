"""Integration-grade unit tests for the discrete-event engine.

These pin down the semantics every figure depends on: capacity
enforcement (Eq. 5), DAG gating (Eq. 7), job completion (Eq. 8),
first-copy-wins cloning, slotted vs event-driven scheduling, and the
deadlock/starvation guards.
"""

import math

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster, single_server_cluster
from repro.resources import Resources
from repro.schedulers.base import Scheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.sim.engine import SimulationEngine
from repro.workload.distributions import Deterministic
from repro.workload.job import Job
from repro.workload.phase import Phase
from repro.workload.task import TaskState
from tests.conftest import make_chain_job, make_diamond_job, make_single_task_job


def run(cluster, jobs, scheduler=None, **kw):
    engine = SimulationEngine(
        cluster, scheduler or FIFOScheduler(), jobs, max_time=kw.pop("max_time", 1e6), **kw
    )
    return engine, engine.run()


class TestBasicExecution:
    def test_single_deterministic_job(self, small_cluster):
        job = make_single_task_job(theta=10.0)
        _, result = run(small_cluster, [job])
        assert job.finish_time == pytest.approx(10.0)
        assert result.num_jobs == 1
        assert result.records[0].flowtime == pytest.approx(10.0)

    def test_arrival_time_respected(self, small_cluster):
        job = make_single_task_job(theta=10.0, arrival_time=5.0)
        run(small_cluster, [job])
        assert job.first_start_time() == pytest.approx(5.0)
        assert job.finish_time == pytest.approx(15.0)

    def test_slowdown_scales_duration(self):
        cluster = homogeneous_cluster(1, Resources.of(4, 8), slowdown=2.0)
        job = make_single_task_job(theta=10.0)
        run(cluster, [job])
        assert job.finish_time == pytest.approx(20.0)

    def test_parallel_tasks_overlap(self, small_cluster):
        # 4 servers × 8 cores: 8 one-core tasks all fit at once.
        job = make_chain_job(1, 8, theta=10.0)
        run(small_cluster, [job])
        assert job.finish_time == pytest.approx(10.0)

    def test_chain_phases_serialize(self, small_cluster):
        job = make_chain_job(3, 2, theta=10.0)
        run(small_cluster, [job])
        assert job.finish_time == pytest.approx(30.0)

    def test_diamond_dag_timing(self, small_cluster):
        job = make_diamond_job(theta=5.0)
        run(small_cluster, [job])
        # 0 (5s) → 1 & 2 in parallel (5s) → 3 (5s)
        assert job.finish_time == pytest.approx(15.0)

    def test_jobs_sorted_by_arrival(self, small_cluster):
        late = make_single_task_job(theta=1.0, arrival_time=50.0, job_id=2)
        early = make_single_task_job(theta=1.0, arrival_time=0.0, job_id=1)
        _, result = run(small_cluster, [late, early])
        assert result.num_jobs == 2


class TestCapacityEnforcement:
    def test_tasks_queue_when_full(self):
        cluster = homogeneous_cluster(1, Resources.of(1, 2))
        # Two 1-core tasks on a 1-core server must serialize.
        job = make_chain_job(1, 2, cpu=1.0, mem=1.0, theta=10.0)
        run(cluster, [job])
        assert job.finish_time == pytest.approx(20.0)

    def test_infeasible_task_rejected_upfront(self):
        cluster = homogeneous_cluster(2, Resources.of(4, 4))
        job = make_single_task_job(cpu=5.0, mem=1.0)
        with pytest.raises(ValueError, match="exceeds every server"):
            SimulationEngine(cluster, FIFOScheduler(), [job])

    def test_memory_constrains_too(self):
        cluster = homogeneous_cluster(1, Resources.of(8, 4))
        job = make_chain_job(1, 2, cpu=1.0, mem=4.0, theta=10.0)
        run(cluster, [job])
        assert job.finish_time == pytest.approx(20.0)  # memory-serialized

    def test_launch_over_capacity_raises(self):
        cluster = single_server_cluster(Resources.of(1, 1))
        job = make_chain_job(1, 2, cpu=1.0, mem=1.0, theta=5.0)

        class Greedy(Scheduler):
            name = "greedy"

            def schedule(self, view):
                for task in view.active_jobs[0].ready_tasks():
                    view.launch(task, view.cluster[0])

        engine = SimulationEngine(cluster, Greedy(), [job])
        with pytest.raises(RuntimeError, match="cannot fit"):
            engine.run()


class TestDAGGating:
    def test_launching_gated_task_raises(self):
        cluster = homogeneous_cluster(1, Resources.of(8, 8))
        job = make_chain_job(2, 1, theta=5.0)

        class Jumper(Scheduler):
            name = "jumper"

            def schedule(self, view):
                if not view.active_jobs:
                    return
                phase2 = view.active_jobs[0].phases[1]
                if phase2.tasks[0].state is TaskState.PENDING:
                    view.launch(phase2.tasks[0], view.cluster[0])

        engine = SimulationEngine(cluster, Jumper(), [job], max_time=100)
        with pytest.raises(RuntimeError, match="Eq. 7"):
            engine.run()


class TestCloning:
    def test_first_copy_wins_and_kills_rest(self):
        cluster = homogeneous_cluster(2, Resources.of(4, 4), slowdown=1.0)
        job = make_single_task_job(theta=10.0)

        class CloneOnce(Scheduler):
            name = "clone-once"

            def schedule(self, view):
                for j in view.active_jobs:
                    for t in j.ready_tasks():
                        view.launch(t, view.cluster[0])
                        view.launch(t, view.cluster[1], clone=True)

        engine = SimulationEngine(cluster, CloneOnce(), [job])
        result = engine.run()
        task = job.phases[0].tasks[0]
        assert task.state is TaskState.FINISHED
        assert len(task.copies) == 2
        finished = [c for c in task.copies if c.finished]
        killed = [c for c in task.copies if c.killed]
        assert len(finished) == 1 and len(killed) == 1
        assert engine.clones_launched == 1
        assert result.records[0].num_clones == 1
        # All resources released at the end.
        assert engine.cluster.total_allocated().is_zero()

    def test_killed_copy_frees_resources_immediately(self):
        cluster = homogeneous_cluster(2, Resources.of(1, 1))
        job = make_single_task_job(cpu=1.0, mem=1.0, theta=10.0)

        class CloneOnce(Scheduler):
            name = "clone-once"

            def schedule(self, view):
                for j in view.active_jobs:
                    for t in j.ready_tasks():
                        view.launch(t, view.cluster[0])
                        view.launch(t, view.cluster[1], clone=True)

        engine = SimulationEngine(cluster, CloneOnce(), [job])
        engine.run()
        assert cluster[0].allocated.is_zero()
        assert cluster[1].allocated.is_zero()

    def test_killed_copy_usage_truncated(self):
        """A clone killed at t charges only its actual runtime (Fig. 8b)."""
        cluster = homogeneous_cluster(1, Resources.of(4, 4), slowdown=1.0)
        slow = homogeneous_cluster(1, Resources.of(4, 4))  # unused, clarity
        del slow
        job = make_single_task_job(theta=10.0, sigma=5.0)

        class CloneOnce(Scheduler):
            name = "clone-once"

            def schedule(self, view):
                for j in view.active_jobs:
                    for t in j.ready_tasks():
                        view.launch(t, view.cluster[0])
                        view.launch(t, view.cluster[0], clone=True)

        engine = SimulationEngine(cluster, CloneOnce(), [job], seed=5)
        engine.run()
        task = job.phases[0].tasks[0]
        killed = [c for c in task.copies if c.killed]
        finished = [c for c in task.copies if c.finished]
        assert len(killed) == 1 and len(finished) == 1
        assert killed[0].duration <= finished[0].duration + 1e-9

    def test_max_copies_cap_enforced(self):
        cluster = homogeneous_cluster(4, Resources.of(4, 4))
        job = make_single_task_job(theta=10.0)

        class CloneStorm(Scheduler):
            name = "storm"

            def schedule(self, view):
                for j in view.active_jobs:
                    for t in j.ready_tasks():
                        for s in view.cluster:
                            view.launch(t, s)

        engine = SimulationEngine(cluster, CloneStorm(), [job], max_copies_per_task=2)
        with pytest.raises(RuntimeError, match="copy cap"):
            engine.run()


class TestSlottedMode:
    def test_scheduling_quantized_to_slots(self):
        cluster = homogeneous_cluster(1, Resources.of(8, 8))
        # Job arrives at t=3; with 5s slots it cannot start before t=5.
        job = make_single_task_job(theta=10.0, arrival_time=3.0)
        _, result = run(cluster, [job], schedule_interval=5.0)
        assert job.first_start_time() == pytest.approx(5.0)
        assert job.finish_time == pytest.approx(15.0)

    def test_slot_jump_over_idle_gap(self):
        cluster = homogeneous_cluster(1, Resources.of(8, 8))
        jobs = [
            make_single_task_job(theta=2.0, arrival_time=0.0, job_id=1),
            make_single_task_job(theta=2.0, arrival_time=1000.0, job_id=2),
        ]
        engine, _ = run(cluster, jobs, schedule_interval=5.0)
        # Far fewer ticks than 1000/5 if the idle gap is jumped.
        assert len(engine.schedule_pass_seconds) < 50

    def test_event_mode_schedules_immediately(self):
        cluster = homogeneous_cluster(1, Resources.of(8, 8))
        job = make_single_task_job(theta=10.0, arrival_time=3.0)
        run(cluster, [job], schedule_interval=0.0)
        assert job.first_start_time() == pytest.approx(3.0)


class TestGuards:
    def test_max_time_exceeded(self):
        cluster = homogeneous_cluster(1, Resources.of(8, 8))
        job = make_single_task_job(theta=100.0)
        with pytest.raises(RuntimeError, match="max_time"):
            run(cluster, [job], max_time=10.0)

    def test_starvation_detected(self):
        cluster = homogeneous_cluster(1, Resources.of(8, 8))
        job = make_single_task_job(theta=5.0)

        class DoNothing(Scheduler):
            name = "lazy"

            def schedule(self, view):
                pass

        engine = SimulationEngine(cluster, DoNothing(), [job], max_time=100)
        with pytest.raises(RuntimeError, match="starved"):
            engine.run()

    def test_empty_workload_runs_clean(self, small_cluster):
        # A service session may start idle: an empty job list must yield
        # a clean zero-event result, not a crash (the old slotted path
        # read jobs[0] unconditionally).
        for interval in (0.0, 5.0):
            engine = SimulationEngine(
                small_cluster, FIFOScheduler(), [], schedule_interval=interval
            )
            result = engine.run()
            assert result.num_jobs == 0
            assert result.events_processed == 0
            assert result.simulated_time == 0.0
            assert result.makespan == 0.0
            assert result.mean_flowtime == 0.0
            assert result.mean_running_time == 0.0
            assert result.summary()["jobs"] == 0.0


class TestAccounting:
    def test_utilization_integral(self):
        cluster = homogeneous_cluster(1, Resources.of(2, 2))
        # One 1-core/1-GB task for 10s on a 2-core/2-GB server,
        # sim ends at t=10 → average utilization 50%.
        job = make_single_task_job(cpu=1.0, mem=1.0, theta=10.0)
        engine, result = run(cluster, [job])
        assert result.avg_utilization.cpu == pytest.approx(0.5)
        assert result.avg_utilization.mem == pytest.approx(0.5)

    def test_copies_counted(self, small_cluster):
        job = make_chain_job(1, 5, theta=2.0)
        engine, _ = run(small_cluster, [job])
        assert engine.copies_launched == 5
        assert engine.clones_launched == 0

    def test_schedule_overhead_recorded(self, small_cluster):
        job = make_single_task_job(theta=1.0)
        engine, result = run(small_cluster, [job])
        assert len(result.schedule_pass_seconds) >= 1
        assert all(s >= 0 for s in result.schedule_pass_seconds)

    def test_determinism_same_seed(self):
        def go():
            cluster = homogeneous_cluster(2, Resources.of(4, 4))
            jobs = [
                make_chain_job(2, 3, theta=10.0, sigma=5.0, job_id=k, arrival_time=k)
                for k in range(3)
            ]
            _, result = run(cluster, jobs, seed=7)
            return [r.finish_time for r in result.records]

        assert go() == go()

    def test_different_seed_different_outcome(self):
        def go(seed):
            cluster = homogeneous_cluster(2, Resources.of(4, 4))
            jobs = [make_chain_job(1, 4, theta=10.0, sigma=6.0, job_id=0)]
            _, result = run(cluster, jobs, seed=seed)
            return result.records[0].finish_time

        assert go(1) != go(2)
