"""Unit tests for per-job records and aggregate results."""

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.resources import Resources
from repro.schedulers.fifo import FIFOScheduler
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import JobRecord, record_for_job
from repro.workload.task import TaskCopy
from tests.conftest import make_chain_job, make_single_task_job


def finished_record(**kw):
    return JobRecord(
        job_id=kw.get("job_id", 0),
        name=kw.get("name", "j"),
        arrival_time=kw.get("arrival_time", 0.0),
        first_start_time=kw.get("first_start_time", 2.0),
        finish_time=kw.get("finish_time", 12.0),
        num_phases=1,
        num_tasks=kw.get("num_tasks", 1),
        num_copies=kw.get("num_copies", 1),
        num_clones=kw.get("num_clones", 0),
        tasks_with_clones=kw.get("tasks_with_clones", 0),
        cpu_seconds=kw.get("cpu_seconds", 10.0),
        mem_seconds=kw.get("mem_seconds", 20.0),
    )


class TestJobRecord:
    def test_derived_metrics(self):
        r = finished_record(arrival_time=1.0, first_start_time=3.0, finish_time=13.0)
        assert r.flowtime == 12.0
        assert r.running_time == 10.0
        assert r.wait_time == 2.0

    def test_normalized_usage(self):
        r = finished_record(cpu_seconds=10.0, mem_seconds=40.0)
        assert r.normalized_usage(Resources.of(100, 200)) == pytest.approx(0.3)


class TestRecordForJob:
    def test_unfinished_job_rejected(self):
        with pytest.raises(ValueError):
            record_for_job(make_single_task_job())

    def test_counts_copies_and_clones(self):
        job = make_single_task_job(cpu=2.0, mem=4.0)
        task = job.phases[0].tasks[0]
        a = TaskCopy(task, 0, 0.0, 10.0, is_clone=False)
        b = TaskCopy(task, 1, 0.0, 6.0, is_clone=True)
        task.add_copy(a)
        task.add_copy(b)
        b.finished = True
        a.killed = True
        a.duration = 6.0
        task.complete(6.0)
        job.mark_finished_if_done(6.0)
        rec = record_for_job(job)
        assert rec.num_copies == 2
        assert rec.num_clones == 1
        assert rec.tasks_with_clones == 1
        assert rec.cpu_seconds == pytest.approx(2.0 * 12.0)
        assert rec.mem_seconds == pytest.approx(4.0 * 12.0)


class TestSimulationResult:
    @pytest.fixture
    def result(self):
        cluster = homogeneous_cluster(2, Resources.of(8, 16))
        jobs = [
            make_chain_job(1, 4, theta=10.0, job_id=k, arrival_time=5.0 * k)
            for k in range(3)
        ]
        engine = SimulationEngine(cluster, FIFOScheduler(), jobs, max_time=1e5)
        return engine.run()

    def test_vectors_sorted_by_job_id(self, result):
        assert [r.job_id for r in result.records] == [0, 1, 2]
        assert len(result.flowtimes()) == 3

    def test_aggregates_consistent(self, result):
        assert result.total_flowtime == pytest.approx(result.flowtimes().sum())
        assert result.mean_flowtime == pytest.approx(result.flowtimes().mean())
        assert result.num_jobs == 3

    def test_makespan(self, result):
        finish = max(r.finish_time for r in result.records)
        assert result.makespan == pytest.approx(finish - 0.0)

    def test_clone_task_fraction_zero_without_clones(self, result):
        assert result.clone_task_fraction == 0.0

    def test_cumulative_flowtime_series(self, result):
        idx, cum = result.cumulative_flowtime_series()
        assert list(idx) == [1, 2, 3]
        assert cum[-1] == pytest.approx(result.total_flowtime)
        assert all(b >= a for a, b in zip(cum, cum[1:]))

    def test_summary_keys(self, result):
        s = result.summary()
        for key in (
            "jobs",
            "total_flowtime",
            "mean_flowtime",
            "makespan",
            "total_usage",
            "clone_task_fraction",
        ):
            assert key in s

    def test_overhead_stats(self, result):
        assert result.mean_schedule_pass_ms >= 0.0
        assert result.max_schedule_pass_ms >= result.mean_schedule_pass_ms
