"""Tests for the replay determinism oracle (DESIGN.md §5.3).

Records real simulations — event-driven and slotted, with cloning and
scheduler-issued kills — and verifies the journaled decision trace
reconstructs a bit-identical :class:`SimulationResult` on a fresh
cluster and workload.  Tampered traces must fail loudly with
:class:`ReplayDivergence` at the first divergent step.
"""

import dataclasses

import pytest

from repro.cluster.heterogeneity import homogeneous_cluster
from repro.core.online import DollyMPScheduler
from repro.resources import Resources
from repro.schedulers.base import Scheduler
from repro.schedulers.fifo import FIFOScheduler
from repro.sim.actions import DecisionTrace, Kill, Launch
from repro.sim.replay import (
    ReplayDivergence,
    ReplayScheduler,
    assert_replay_identical,
    replay_trace,
)
from repro.sim.runner import run_recorded
from repro.workload.task import TaskState
from tests.conftest import make_single_task_job


def _cluster():
    return homogeneous_cluster(4, Resources.of(8, 16))


def _straggler_jobs():
    """Jobs with Pareto stragglers, so DollyMP actually clones."""
    return [
        make_single_task_job(theta=8.0, sigma=4.0, arrival_time=6.0 * i, job_id=i)
        for i in range(6)
    ]


class CloneThenKillScheduler(Scheduler):
    """Launches every task with one clone, kills the clone a pass later.

    Exists to exercise scheduler-issued ``Kill`` actions (distinct from
    the engine's internal first-copy-wins kills, which bypass the
    journal) through the record/replay cycle.
    """

    name = "clone-then-kill"

    def schedule(self, view) -> None:
        for job in view.active_jobs:
            for phase in job.phases:
                if not job.phase_ready(phase, view.time):
                    continue
                for task in phase.tasks:
                    if task.state is TaskState.FINISHED:
                        continue
                    live = [c for c in task.copies if c.live]
                    if not live:
                        server = self._first_fit(view, task)
                        if server is None:
                            continue
                        view.apply(Launch(task, server))
                        second = self._first_fit(view, task)
                        if second is not None:
                            view.apply(Launch(task, second, clone=True))
                    elif len(live) > 1 and view.time > live[-1].start_time:
                        clones = [c for c in live if c.is_clone]
                        if clones:
                            view.apply(Kill(clones[-1]))

    @staticmethod
    def _first_fit(view, task):
        for server in view.cluster:
            if server.can_fit(task.demand):
                return server
        return None


class TestReplayBitIdentical:
    def test_event_driven_dollymp(self):
        result, trace = run_recorded(
            _cluster(), DollyMPScheduler(max_clones=2), _straggler_jobs(), seed=11
        )
        assert len(trace) > 0
        replayed = replay_trace(trace, _cluster(), _straggler_jobs())
        assert_replay_identical(result, replayed)
        # The headline quantity of the paper, compared bit-for-bit.
        assert [r.flowtime for r in replayed.records] == [
            r.flowtime for r in result.records
        ]

    def test_slotted_mode(self):
        result, trace = run_recorded(
            _cluster(),
            DollyMPScheduler(max_clones=2),
            _straggler_jobs(),
            seed=4,
            schedule_interval=5.0,
        )
        assert trace.meta["schedule_interval"] == 5.0
        replayed = replay_trace(trace, _cluster(), _straggler_jobs())
        assert_replay_identical(result, replayed)

    def test_scheduler_issued_kills_replay(self):
        jobs = lambda: [  # noqa: E731
            make_single_task_job(theta=10.0, arrival_time=3.0 * i, job_id=i)
            for i in range(3)
        ]
        result, trace = run_recorded(_cluster(), CloneThenKillScheduler(), jobs(), seed=5)
        kills = [d for d in trace if d.kind == "kill"]
        assert kills, "scenario must journal explicit Kill decisions"
        assert all(d.copy_index is not None for d in kills)
        replayed = replay_trace(trace, _cluster(), jobs())
        assert_replay_identical(result, replayed)

    def test_jsonl_roundtrip_replays(self, tmp_path):
        result, trace = run_recorded(
            _cluster(), DollyMPScheduler(max_clones=2), _straggler_jobs(), seed=11
        )
        path = tmp_path / "decisions.jsonl"
        trace.dump_jsonl(path)
        loaded = DecisionTrace.load_jsonl(path)
        replayed = replay_trace(loaded, _cluster(), _straggler_jobs())
        assert_replay_identical(result, replayed)

    def test_replay_scheduler_named_after_policy(self):
        result, trace = run_recorded(_cluster(), FIFOScheduler(), _straggler_jobs(), seed=1)
        replayed = replay_trace(trace, _cluster(), _straggler_jobs())
        assert replayed.scheduler_name == result.scheduler_name


class TestReplayDivergence:
    def _recorded(self):
        return run_recorded(
            _cluster(), DollyMPScheduler(max_clones=2), _straggler_jobs(), seed=11
        )

    def test_tampered_point_detected(self):
        _, trace = self._recorded()
        decisions = list(trace.decisions)
        decisions[0] = dataclasses.replace(decisions[0], point=0)
        with pytest.raises(ReplayDivergence, match="entry-point sequence"):
            replay_trace(decisions, _cluster(), _straggler_jobs(), seed=11)

    def test_tampered_task_reference_detected(self):
        _, trace = self._recorded()
        decisions = list(trace.decisions)
        decisions[0] = dataclasses.replace(decisions[0], task_index=99)
        with pytest.raises(ReplayDivergence, match="does not exist"):
            replay_trace(decisions, _cluster(), _straggler_jobs(), seed=11)

    def test_phantom_decision_detected(self):
        result, trace = self._recorded()
        decisions = list(trace.decisions)
        phantom = dataclasses.replace(
            decisions[-1], seq=len(decisions), point=decisions[-1].point + 10_000
        )
        with pytest.raises(ReplayDivergence, match="unapplied"):
            replay_trace(decisions + [phantom], _cluster(), _straggler_jobs(), seed=11)

    def test_seed_required_without_meta(self):
        _, trace = self._recorded()
        with pytest.raises(ValueError, match="seed"):
            replay_trace(list(trace.decisions), _cluster(), _straggler_jobs())

    def test_result_comparison_catches_divergence(self):
        a, _ = self._recorded()
        b, _ = run_recorded(
            _cluster(), DollyMPScheduler(max_clones=2), _straggler_jobs(), seed=12
        )
        with pytest.raises(ReplayDivergence, match="diverged"):
            assert_replay_identical(a, b)

    def test_result_comparison_catches_job_count(self):
        a, _ = self._recorded()
        b, _ = run_recorded(
            _cluster(),
            DollyMPScheduler(max_clones=2),
            _straggler_jobs()[:4],
            seed=11,
        )
        with pytest.raises(ReplayDivergence, match="job count"):
            assert_replay_identical(a, b)

    def test_empty_replay_scheduler_defaults_name(self):
        assert ReplayScheduler([]).name == "replay"
