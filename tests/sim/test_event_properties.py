"""Property-based tests (hypothesis) for EventQueue tie-breaking.

The replay oracle's decision-point alignment (DESIGN.md §5.3) assumes
the event order is a deterministic total order: at equal timestamps the
queue pops COPY_FINISH before JOB_ARRIVAL before SCHEDULE_TICK (the
numeric order of :class:`EventKind`), and within one (time, kind)
bucket events drain in push (FIFO) order via the monotone ``seq``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventKind, EventQueue

#: Deliberately tiny time domain so timestamp ties are the common case.
tie_times = st.sampled_from([0.0, 1.0, 1.5, 2.0])
kinds = st.sampled_from(list(EventKind))
pushes = st.lists(st.tuples(tie_times, kinds), max_size=60)


def drain(q: EventQueue):
    out = []
    while q:
        out.append(q.pop())
    return out


class TestEventQueueProperties:
    @given(pushes)
    @settings(max_examples=200, deadline=None)
    def test_drain_is_stable_sort_by_time_then_kind(self, items):
        """Pop order == stable sort of pushes keyed on (time, kind).

        Stability of the sort *is* the FIFO-within-bucket guarantee: any
        two events with equal (time, kind) keep their push order.
        """
        q = EventQueue()
        for i, (t, k) in enumerate(items):
            q.push(t, k, payload=i)
        drained = drain(q)
        expected = sorted(enumerate(items), key=lambda e: (e[1][0], e[1][1]))
        assert [ev.payload for ev in drained] == [i for i, _ in expected]

    @given(pushes)
    @settings(max_examples=200, deadline=None)
    def test_kind_priority_and_fifo_within_kind(self, items):
        q = EventQueue()
        for i, (t, k) in enumerate(items):
            q.push(t, k, payload=i)
        drained = drain(q)
        for a, b in zip(drained, drained[1:]):
            if a.time == b.time:
                # COPY_FINISH < JOB_ARRIVAL < SCHEDULE_TICK, never regresses
                assert a.kind <= b.kind
                if a.kind == b.kind:
                    assert a.payload < b.payload  # FIFO by push order
            else:
                assert a.time < b.time

    @given(pushes)
    @settings(max_examples=200, deadline=None)
    def test_pop_batch_flattens_to_pop_order(self, items):
        """Batched drains are a pure chunking of the per-event order.

        ``kinds`` spans every EventKind, so same-instant fault events
        (COPY_FAIL, SERVER_FAIL, recoveries) ride through the batch path
        in the same positions the scalar pop loop would give them.
        """
        q_pop, q_batch = EventQueue(), EventQueue()
        for i, (t, k) in enumerate(items):
            q_pop.push(t, k, payload=i)
            q_batch.push(t, k, payload=i)
        ref = drain(q_pop)
        batched = []
        while q_batch:
            batch = q_batch.pop_batch()
            t = batch[0].time
            # One timestamp per batch, and the batch is maximal: the
            # next pending event (if any) is strictly later.
            assert all(ev.time == t for ev in batch)
            nxt = q_batch.peek_time()
            assert nxt is None or nxt > t
            batched.extend(batch)
        assert [(e.time, e.kind, e.payload) for e in batched] == [
            (e.time, e.kind, e.payload) for e in ref
        ]

    @given(st.lists(kinds, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_distinct_times_give_batches_of_one(self, ks):
        """With no timestamp ties, pop_batch degenerates to pop."""
        q = EventQueue()
        for i, k in enumerate(ks):
            q.push(float(i), k, payload=i)
        while q:
            assert len(q.pop_batch()) == 1

    @given(st.permutations(list(EventKind)))
    @settings(max_examples=100, deadline=None)
    def test_same_instant_batch_orders_all_kinds(self, perm):
        """A single-instant batch sorts every kind — fault kinds
        included — by the EventKind numeric order."""
        q = EventQueue()
        for k in perm:
            q.push(5.0, k)
        batch = q.pop_batch()
        assert [e.kind for e in batch] == sorted(EventKind)
        assert not q

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_interleaved_push_pop_matches_model(self, data):
        """Pops interleaved with pushes still follow (time, kind, seq)."""
        q = EventQueue()
        model = []  # (time, kind, push-ordinal)
        ordinal = 0
        ops = data.draw(st.lists(st.sampled_from(["push", "pop"]), max_size=80))
        for op in ops:
            if op == "push" or not model:
                t = data.draw(tie_times)
                k = data.draw(kinds)
                q.push(t, k, payload=ordinal)
                model.append((t, k, ordinal))
                ordinal += 1
            else:
                expect = min(model)
                ev = q.pop()
                assert (ev.time, ev.kind, ev.payload) == expect
                model.remove(expect)
        assert len(q) == len(model)
