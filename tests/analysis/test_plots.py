"""Tests for the ASCII plotting helpers."""

import numpy as np

from repro.analysis.plots import ascii_bars, ascii_cdf, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        out = sparkline([5.0, 5.0, 5.0])
        assert len(out) == 3
        assert len(set(out)) == 1

    def test_monotone_series_monotone_blocks(self):
        out = sparkline([0, 1, 2, 3, 4])
        assert len(out) == 5
        # Unicode block characters rise with value.
        codes = [ord(c) for c in out]
        assert codes == sorted(codes)

    def test_extremes_map_to_extreme_blocks(self):
        out = sparkline([0.0, 100.0])
        assert out[0] == " " and out[1] == "█"


class TestAsciiCdf:
    def test_empty(self):
        assert ascii_cdf({}) == "(no data)"

    def test_shape_and_legend(self):
        rng = np.random.default_rng(0)
        out = ascii_cdf(
            {"alpha": rng.uniform(0, 10, 50), "beta": rng.uniform(5, 20, 50)},
            width=30,
            height=8,
        )
        lines = out.splitlines()
        assert len(lines) == 8 + 3  # grid + axis + xlabels + legend
        assert "a=alpha" in lines[-1] and "b=beta" in lines[-1]
        assert lines[0].startswith("1.00 |")

    def test_markers_present(self):
        out = ascii_cdf({"zzz": [1.0, 2.0, 3.0]}, width=20, height=6)
        assert "z" in out

    def test_overlap_marker(self):
        out = ascii_cdf(
            {"aaa": [1.0, 2.0], "bbb": [1.0, 2.0]}, width=20, height=6
        )
        assert "*" in out


class TestAsciiBars:
    def test_empty(self):
        assert ascii_bars({}) == "(no data)"

    def test_proportional(self):
        out = ascii_bars({"big": 100.0, "small": 25.0}, width=40)
        lines = out.splitlines()
        big = next(l for l in lines if l.startswith("big"))
        small = next(l for l in lines if l.startswith("small"))
        assert big.count("█") > small.count("█")
        assert "100" in big and "25" in small

    def test_zero_value_has_no_bar(self):
        out = ascii_bars({"a": 10.0, "b": 0.0})
        b_line = next(l for l in out.splitlines() if l.startswith("b "))
        assert "█" not in b_line
