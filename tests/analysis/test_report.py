"""Unit tests for report tables and per-job ratio distributions."""

import numpy as np
import pytest

from repro.analysis.report import (
    cdf_table,
    comparison_table,
    format_table,
    pairwise_ratios,
    ratio_cdf,
)
from repro.cluster.heterogeneity import homogeneous_cluster
from repro.resources import Resources
from repro.schedulers.fifo import FIFOScheduler
from repro.schedulers.srpt import SRPTScheduler
from repro.sim.runner import run_simulation
from tests.conftest import make_single_task_job


def run_pair():
    def jobs():
        return [
            make_single_task_job(theta=10.0, job_id=1),
            make_single_task_job(theta=1.0, job_id=2),
        ]

    a = run_simulation(
        homogeneous_cluster(1, Resources.of(1, 100)), SRPTScheduler(), jobs(), seed=0
    )
    b = run_simulation(
        homogeneous_cluster(1, Resources.of(1, 100)), FIFOScheduler(), jobs(), seed=0
    )
    return a, b


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 0.001234]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "0.00123" in out

    def test_zero_renders_plain(self):
        assert "0" in format_table(["x"], [[0.0]])


class TestComparisonTable:
    def test_one_row_per_scheduler(self):
        a, b = run_pair()
        out = comparison_table({"SRPT": a, "FIFO": b})
        assert "SRPT" in out and "FIFO" in out
        assert "total_flowtime" in out


class TestCdfTable:
    def test_reads_at_points(self):
        out = cdf_table({"s": [1.0, 2.0, 3.0]}, [2.0, 5.0], label="seconds")
        assert "seconds" in out
        assert "0.67" in out or "0.666" in out


class TestRatios:
    def test_pairwise_flowtime_ratios(self):
        a, b = run_pair()
        ratios = pairwise_ratios(a, b)
        assert ratios.shape == (2,)
        # SRPT strictly helps the short job on this instance.
        assert ratios.min() < 1.0 or np.allclose(ratios, 1.0)

    def test_ratio_cdf_metrics(self):
        a, b = run_pair()
        for metric in ("flowtime", "running_time", "usage"):
            r = ratio_cdf(a, b, metric=metric)
            assert r.shape == (2,)
            assert np.all(r > 0)

    def test_unknown_metric(self):
        a, b = run_pair()
        with pytest.raises(ValueError):
            ratio_cdf(a, b, metric="bogus")

    def test_mismatched_runs_rejected(self):
        a, _ = run_pair()
        c = run_simulation(
            homogeneous_cluster(1, Resources.of(1, 100)),
            FIFOScheduler(),
            [make_single_task_job(job_id=9)],
        )
        with pytest.raises(ValueError):
            pairwise_ratios(a, c)
