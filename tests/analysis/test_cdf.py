"""Unit tests for CDF helpers."""

import numpy as np
import pytest

from repro.analysis.cdf import cdf_at, empirical_cdf, fraction_below, percentile


class TestEmpiricalCDF:
    def test_basic(self):
        x, f = empirical_cdf([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert list(f) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        x, f = empirical_cdf([])
        assert x.size == 0 and f.size == 0

    def test_duplicates(self):
        x, f = empirical_cdf([2.0, 2.0])
        assert f[-1] == 1.0


class TestCdfAt:
    def test_reads(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        got = cdf_at(vals, [0.5, 2.0, 2.5, 10.0])
        assert list(got) == pytest.approx([0.0, 0.5, 0.5, 1.0])

    def test_empty_values(self):
        assert list(cdf_at([], [1.0])) == [0.0]


class TestScalars:
    def test_fraction_below(self):
        assert fraction_below([1, 2, 3, 4], 2.5) == pytest.approx(0.5)

    def test_percentile(self):
        vals = np.arange(1, 101, dtype=float)
        assert percentile(vals, 0.95) == pytest.approx(np.quantile(vals, 0.95))

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
