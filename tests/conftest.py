"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.heterogeneity import homogeneous_cluster, single_server_cluster
from repro.resources import Resources
from repro.workload.distributions import Deterministic, ParetoType1
from repro.workload.job import Job
from repro.workload.phase import Phase


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def small_cluster() -> Cluster:
    """4 × (8 cores, 16 GB) homogeneous cluster."""
    return homogeneous_cluster(4, Resources.of(8, 16))


@pytest.fixture
def unit_server() -> Cluster:
    """One server of normalized capacity 1 (the transient setting)."""
    return single_server_cluster(Resources.of(1.0, 1.0))


def make_single_task_job(
    *,
    cpu: float = 1.0,
    mem: float = 2.0,
    theta: float = 10.0,
    sigma: float = 0.0,
    arrival_time: float = 0.0,
    job_id: int | None = None,
    name: str = "single",
) -> Job:
    """One-phase one-task job, deterministic unless sigma > 0."""
    dist = ParetoType1.from_moments(theta, sigma) if sigma > 0 else Deterministic(theta)
    phase = Phase(0, 1, Resources.of(cpu, mem), dist)
    return Job([phase], arrival_time=arrival_time, job_id=job_id, name=name)


def make_chain_job(
    num_phases: int,
    tasks_per_phase: int,
    *,
    cpu: float = 1.0,
    mem: float = 2.0,
    theta: float = 10.0,
    sigma: float = 0.0,
    arrival_time: float = 0.0,
    job_id: int | None = None,
    name: str = "chain",
) -> Job:
    """A sequential chain of identical phases."""
    phases = []
    for k in range(num_phases):
        dist = (
            ParetoType1.from_moments(theta, sigma) if sigma > 0 else Deterministic(theta)
        )
        phases.append(
            Phase(
                k,
                tasks_per_phase,
                Resources.of(cpu, mem),
                dist,
                parents=(k - 1,) if k > 0 else (),
            )
        )
    return Job(phases, arrival_time=arrival_time, job_id=job_id, name=name)


def make_diamond_job(
    *,
    theta: float = 5.0,
    arrival_time: float = 0.0,
    job_id: int | None = None,
) -> Job:
    """Diamond DAG: 0 → {1, 2} → 3 (deterministic tasks)."""
    mk = lambda: Deterministic(theta)  # noqa: E731
    phases = [
        Phase(0, 2, Resources.of(1, 1), mk()),
        Phase(1, 2, Resources.of(1, 1), mk(), parents=(0,)),
        Phase(2, 2, Resources.of(1, 1), mk(), parents=(0,)),
        Phase(3, 1, Resources.of(1, 1), mk(), parents=(1, 2)),
    ]
    return Job(phases, arrival_time=arrival_time, job_id=job_id, name="diamond")
