"""Unit tests for the rack topology / locality model."""

import pytest

from repro.cluster.topology import LocalityLevel, Topology


class TestTopology:
    def test_two_racks_split(self):
        t = Topology.two_racks(30)
        assert t.num_racks == 2
        assert t.rack(0) == 0
        assert t.rack(14) == 0
        assert t.rack(15) == 1
        assert t.rack(29) == 1

    def test_two_racks_odd_count(self):
        t = Topology.two_racks(5)
        assert [t.rack(i) for i in range(5)] == [0, 0, 0, 1, 1]

    def test_single_rack(self):
        t = Topology.single_rack(4)
        assert t.num_racks == 1
        assert t.servers_in_rack(0) == [0, 1, 2, 3]

    def test_len(self):
        assert len(Topology.two_racks(10)) == 10

    def test_servers_in_rack(self):
        t = Topology([0, 1, 0, 1])
        assert t.servers_in_rack(0) == [0, 2]
        assert t.servers_in_rack(1) == [1, 3]


class TestLocality:
    def test_no_preference_is_node_local(self):
        t = Topology.two_racks(4)
        assert t.locality(3, []) is LocalityLevel.NODE_LOCAL

    def test_node_local(self):
        t = Topology.two_racks(4)
        assert t.locality(1, [1, 3]) is LocalityLevel.NODE_LOCAL

    def test_rack_local(self):
        t = Topology.two_racks(4)  # racks: [0,0,1,1]
        assert t.locality(0, [1]) is LocalityLevel.RACK_LOCAL

    def test_off_rack(self):
        t = Topology.two_racks(4)
        assert t.locality(0, [2, 3]) is LocalityLevel.OFF_RACK

    def test_levels_ordered(self):
        assert LocalityLevel.NODE_LOCAL < LocalityLevel.RACK_LOCAL < LocalityLevel.OFF_RACK
