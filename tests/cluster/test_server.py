"""Unit tests for Server allocation bookkeeping."""

import pytest

from repro.cluster.server import Server
from repro.resources import Resources, ZERO
from repro.workload.distributions import Deterministic
from repro.workload.job import Job
from repro.workload.phase import Phase
from repro.workload.task import TaskCopy


def make_task(cpu=2.0, mem=4.0, theta=10.0):
    phase = Phase(0, 1, Resources.of(cpu, mem), Deterministic(theta))
    Job([phase])
    return phase.tasks[0]


def make_copy(task, server_id=0, start=0.0, duration=10.0, clone=False):
    return TaskCopy(task, server_id, start, duration, is_clone=clone)


class TestConstruction:
    def test_basic(self):
        s = Server(0, Resources.of(8, 16))
        assert s.capacity == Resources.of(8, 16)
        assert s.allocated == ZERO
        assert s.available == Resources.of(8, 16)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Server(0, Resources.of(0, 16))
        with pytest.raises(ValueError):
            Server(0, Resources.of(8, -1))

    def test_rejects_nonpositive_slowdown(self):
        with pytest.raises(ValueError):
            Server(0, Resources.of(8, 16), slowdown=0.0)


class TestAllocation:
    def test_allocate_reserves(self):
        s = Server(0, Resources.of(8, 16))
        copy = make_copy(make_task(2, 4))
        s.allocate(copy)
        assert s.allocated == Resources.of(2, 4)
        assert s.available == Resources.of(6, 12)
        assert copy in s.running_copies

    def test_allocate_overflow_raises(self):
        s = Server(0, Resources.of(2, 4))
        t = make_task(2, 4)
        s.allocate(make_copy(t))
        with pytest.raises(RuntimeError):
            s.allocate(make_copy(make_task(1, 1)))

    def test_double_allocate_same_copy_raises(self):
        s = Server(0, Resources.of(8, 16))
        copy = make_copy(make_task(1, 1))
        s.allocate(copy)
        with pytest.raises(RuntimeError):
            s.allocate(copy)

    def test_release_frees(self):
        s = Server(0, Resources.of(8, 16))
        copy = make_copy(make_task(2, 4))
        s.allocate(copy)
        s.release(copy)
        assert s.allocated == ZERO
        assert copy not in s.running_copies

    def test_release_unknown_raises(self):
        s = Server(0, Resources.of(8, 16))
        with pytest.raises(RuntimeError):
            s.release(make_copy(make_task()))

    def test_idle_server_snaps_to_exact_zero(self):
        s = Server(0, Resources.of(8, 16))
        copies = [make_copy(make_task(0.1, 0.3)) for _ in range(7)]
        for c in copies:
            s.allocate(c)
        for c in copies:
            s.release(c)
        assert s.allocated == ZERO  # exact, no float residue

    def test_can_fit(self):
        s = Server(0, Resources.of(8, 16))
        s.allocate(make_copy(make_task(6, 6)))
        assert s.can_fit(Resources.of(2, 10))
        assert not s.can_fit(Resources.of(3, 1))

    def test_utilization(self):
        s = Server(0, Resources.of(8, 16))
        s.allocate(make_copy(make_task(4, 4)))
        u = s.utilization()
        assert u.cpu == pytest.approx(0.5)
        assert u.mem == pytest.approx(0.25)
