"""Tests for the paper's cluster builders."""

import pytest

from repro.cluster.heterogeneity import (
    homogeneous_cluster,
    paper_cluster_30_nodes,
    single_server_cluster,
    trace_sim_cluster,
)
from repro.resources import Resources


class TestPaperCluster:
    def test_node_and_core_counts_match_paper(self):
        c = paper_cluster_30_nodes()
        assert len(c) == 30
        assert c.total_capacity.cpu == 328  # Sec. 6: "a total of 328 cores"

    def test_server_class_mix(self):
        c = paper_cluster_30_nodes()
        cores = sorted(s.capacity.cpu for s in c)
        assert cores.count(24) == 2   # two powerful servers
        assert cores.count(16) == 7   # seven normal servers
        assert cores.count(8) == 21   # the rest

    def test_two_racks(self):
        c = paper_cluster_30_nodes()
        assert c.topology.num_racks == 2
        assert {s.rack for s in c} == {0, 1}

    def test_heterogeneous_slowdowns(self):
        c = paper_cluster_30_nodes()
        slowdowns = {s.slowdown for s in c}
        assert len(slowdowns) == 3
        assert min(slowdowns) < 1.0 < max(slowdowns)

    def test_normal_servers_memory_range(self):
        c = paper_cluster_30_nodes()
        normal_mem = {s.capacity.mem for s in c if s.capacity.cpu == 16}
        assert normal_mem <= {32.0, 64.0}  # "32-64GB memory"


class TestTraceSimCluster:
    def test_default_size(self):
        c = trace_sim_cluster()
        assert len(c) == 300

    def test_custom_size(self):
        assert len(trace_sim_cluster(50)) == 50

    def test_reproducible(self):
        a = trace_sim_cluster(100, seed=3)
        b = trace_sim_cluster(100, seed=3)
        assert [s.capacity for s in a] == [s.capacity for s in b]

    def test_seed_changes_mix(self):
        a = trace_sim_cluster(100, seed=3)
        b = trace_sim_cluster(100, seed=4)
        assert [s.capacity for s in a] != [s.capacity for s in b]

    def test_cpu_scale_shrinks_cores(self):
        full = trace_sim_cluster(100, seed=1)
        half = trace_sim_cluster(100, seed=1, cpu_scale=0.5)
        assert half.total_capacity.cpu < full.total_capacity.cpu
        assert half.total_capacity.mem == full.total_capacity.mem

    def test_cpu_scale_never_below_one_core(self):
        tiny = trace_sim_cluster(50, seed=1, cpu_scale=0.01)
        assert all(s.capacity.cpu >= 1 for s in tiny)

    def test_rejects_zero_servers(self):
        with pytest.raises(ValueError):
            trace_sim_cluster(0)

    def test_multiple_racks_at_scale(self):
        c = trace_sim_cluster(200, seed=0)
        assert c.topology.num_racks >= 2


class TestSimpleBuilders:
    def test_homogeneous(self):
        c = homogeneous_cluster(5, Resources.of(4, 8))
        assert len(c) == 5
        assert all(s.capacity == Resources.of(4, 8) for s in c)
        assert all(s.slowdown == 1.0 for s in c)

    def test_single_server_default_unit(self):
        c = single_server_cluster()
        assert len(c) == 1
        assert c.total_capacity == Resources.of(1, 1)
