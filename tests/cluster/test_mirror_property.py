"""Property tests: the availability mirror always equals a fresh recompute.

The mirror is updated *incrementally* (one O(1) store per
allocate/release); these tests drive arbitrary operation sequences —
including the engine's clone first-copy-wins kill path — and assert the
arrays are bit-identical to a mirror rebuilt from scratch off the
servers' own bookkeeping.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.heterogeneity import paper_cluster_30_nodes
from repro.cluster.mirror import AvailabilityMirror
from repro.cluster.server import Server
from repro.core.online import DollyMPScheduler
from repro.resources import Resources
from repro.sim.runner import run_simulation
from repro.workload.mapreduce import wordcount_job
from tests.cluster.test_server import make_copy, make_task


def assert_mirror_fresh(cluster: Cluster) -> None:
    """The incrementally-maintained arrays must equal a from-scratch
    rebuild, bit for bit (no tolerance: both read the same floats)."""
    fresh = AvailabilityMirror(cluster.servers)
    mirror = cluster.mirror
    for field in ("avail_cpu", "avail_mem", "alloc_cpu", "alloc_mem"):
        assert np.array_equal(getattr(mirror, field), getattr(fresh, field)), field


def small_cluster() -> Cluster:
    return Cluster(
        [
            Server(0, Resources.of(8, 16)),
            Server(1, Resources.of(4, 8)),
            Server(2, Resources.of(16, 8), slowdown=1.5),
            Server(3, Resources.of(6, 6)),
        ]
    )


@given(ops=st.lists(st.integers(min_value=0, max_value=10**9), max_size=80))
@settings(max_examples=60, deadline=None)
def test_mirror_matches_recompute_after_arbitrary_ops(ops):
    """Arbitrary interleavings of allocate and release (kill/finish both
    reduce to Server.release) keep the mirror exact."""
    cluster = small_cluster()
    running: list[tuple[Server, object]] = []
    for op in ops:
        if op % 3 == 0 and running:
            server, copy = running.pop(op % len(running))
            server.release(copy)
        else:
            sid = op % len(cluster.servers)
            server = cluster.servers[sid]
            task = make_task(cpu=1.0 + op % 5, mem=1.0 + op % 7)
            if server.can_fit(task.demand):
                copy = make_copy(task, server_id=sid, duration=5.0)
                server.allocate(copy)
                running.append((server, copy))
        assert_mirror_fresh(cluster)
    # Drain everything: the mirror must land back on full availability.
    for server, copy in running:
        server.release(copy)
    assert_mirror_fresh(cluster)
    assert cluster.total_allocated() == Resources.of(0, 0)


class _AuditingDollyMP(DollyMPScheduler):
    """Asserts mirror exactness on every schedule pass, mid-simulation —
    i.e. while clones are racing and first-copy-wins kills fire."""

    passes = 0

    def schedule(self, view):
        assert_mirror_fresh(view.cluster)
        super().schedule(view)
        assert_mirror_fresh(view.cluster)
        type(self).passes += 1


def test_mirror_exact_through_clone_kill_path():
    """An engine-driven run with aggressive cloning exercises
    _process_copy_finish: the winning copy finishes, siblings are killed
    and released; the mirror must stay exact at every schedule pass."""
    cluster = paper_cluster_30_nodes()
    jobs = [
        wordcount_job(3.0 + i, arrival_time=2.0 * i, job_id=500 + i, cv=1.2)
        for i in range(5)
    ]
    _AuditingDollyMP.passes = 0
    result = run_simulation(
        cluster, _AuditingDollyMP(max_clones=2), jobs, seed=3, max_time=1e6
    )
    assert result.num_jobs == 5
    assert result.clones_launched > 0  # the kill path actually ran
    assert _AuditingDollyMP.passes > 10
    assert_mirror_fresh(cluster)
    # All jobs done: the cluster must be fully drained.
    assert cluster.total_allocated() == Resources.of(0, 0)
    assert np.array_equal(cluster.mirror.avail_cpu, cluster.mirror.cap_cpu)
    assert np.array_equal(cluster.mirror.avail_mem, cluster.mirror.cap_mem)
