"""Unit tests for Cluster aggregates and queries."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.server import Server
from repro.cluster.topology import Topology
from repro.resources import Resources, ZERO
from tests.cluster.test_server import make_copy, make_task


def two_server_cluster():
    return Cluster(
        [Server(0, Resources.of(8, 16)), Server(1, Resources.of(4, 32))]
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_ids_must_be_sequential(self):
        with pytest.raises(ValueError):
            Cluster([Server(1, Resources.of(1, 1))])

    def test_topology_size_checked(self):
        with pytest.raises(ValueError):
            Cluster([Server(0, Resources.of(1, 1))], Topology([0, 0]))

    def test_default_topology_single_rack(self):
        c = two_server_cluster()
        assert c.topology.num_racks == 1

    def test_build_from_specs(self):
        c = Cluster.build([(Resources.of(8, 16), 1.0), (Resources.of(4, 8), 1.5)])
        assert len(c) == 2
        assert c[1].slowdown == 1.5


class TestAggregates:
    def test_total_capacity(self):
        c = two_server_cluster()
        assert c.total_capacity == Resources.of(12, 48)

    def test_total_allocated_and_available(self):
        c = two_server_cluster()
        c[0].allocate(make_copy(make_task(2, 4)))
        assert c.total_allocated() == Resources.of(2, 4)
        assert c.total_available() == Resources.of(10, 44)

    def test_utilization(self):
        c = two_server_cluster()
        c[0].allocate(make_copy(make_task(6, 12)))
        u = c.utilization()
        assert u.cpu == pytest.approx(6 / 12)
        assert u.mem == pytest.approx(12 / 48)

    def test_running_copy_count(self):
        c = two_server_cluster()
        assert c.running_copy_count() == 0
        c[0].allocate(make_copy(make_task(1, 1)))
        c[1].allocate(make_copy(make_task(1, 1)))
        assert c.running_copy_count() == 2


class TestQueries:
    def test_servers_fitting(self):
        c = two_server_cluster()
        fitting = c.servers_fitting(Resources.of(6, 6))
        assert [s.server_id for s in fitting] == [0]

    def test_any_fits(self):
        c = two_server_cluster()
        assert c.any_fits(Resources.of(4, 32))
        assert not c.any_fits(Resources.of(9, 1))

    def test_best_fit_prefers_max_alignment(self):
        c = two_server_cluster()
        # Demand (1, 8): dot with (8,16)=8+128=136; with (4,32)=4+256=260.
        best = c.best_fit_server(Resources.of(1, 8))
        assert best is not None and best.server_id == 1

    def test_best_fit_none_when_nothing_fits(self):
        c = two_server_cluster()
        assert c.best_fit_server(Resources.of(100, 1)) is None

    def test_best_fit_respects_current_allocation(self):
        c = two_server_cluster()
        c[1].allocate(make_copy(make_task(4, 1)))  # server 1 out of CPU
        best = c.best_fit_server(Resources.of(1, 8))
        assert best is not None and best.server_id == 0

    def test_snapshot_available(self):
        c = two_server_cluster()
        snap = c.snapshot_available()
        assert snap == [Resources.of(8, 16), Resources.of(4, 32)]
        c[0].allocate(make_copy(make_task(1, 1)))
        assert snap[0] == Resources.of(8, 16)  # snapshot is immutable

    def test_iteration_order(self):
        c = two_server_cluster()
        assert [s.server_id for s in c] == [0, 1]


def identical_cluster(n=4, vectorized=None):
    return Cluster(
        [Server(i, Resources.of(8, 16)) for i in range(n)], vectorized=vectorized
    )


class TestTieBreaking:
    """Equal alignment scores must resolve to the *lowest* server id in
    both placement paths (scalar strict ``>`` keeps the first maximum;
    ``np.argmax`` returns the first maximal index)."""

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_all_equal_picks_server_zero(self, vectorized):
        c = identical_cluster(vectorized=vectorized)
        best = c.best_fit_server(Resources.of(2, 4))
        assert best is not None and best.server_id == 0

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_tie_after_loading_lowest_wins(self, vectorized):
        c = identical_cluster(vectorized=vectorized)
        # Load servers 0 and 1 identically: 2 and 3 now tie for best.
        c[0].allocate(make_copy(make_task(4, 8), server_id=0))
        c[1].allocate(make_copy(make_task(4, 8), server_id=1))
        best = c.best_fit_server(Resources.of(2, 4))
        assert best is not None and best.server_id == 2

    def test_both_modes_agree_on_every_query(self):
        cv = identical_cluster(vectorized=True)
        cs = identical_cluster(vectorized=False)
        for c in (cv, cs):
            c[1].allocate(make_copy(make_task(3, 6), server_id=1))
            c[3].allocate(make_copy(make_task(3, 6), server_id=3))
        for demand in (Resources.of(2, 4), Resources.of(5, 10), Resources.of(8, 16)):
            bv, bs = cv.best_fit_server(demand), cs.best_fit_server(demand)
            assert (bv and bv.server_id) == (bs and bs.server_id)
            assert [s.server_id for s in cv.servers_fitting(demand)] == [
                s.server_id for s in cs.servers_fitting(demand)
            ]
            assert cv.any_fits(demand) == cs.any_fits(demand)
